package core

import (
	"math"
	"sync"
	"testing"
)

func TestRunShared2WindowAnalytics(t *testing.T) {
	// Space sharing with a gen_keys application: per-step moving sums
	// through the circular buffer must match the time-sharing Run2.
	const n, half, steps = 120, 2, 4
	in := make([]float64, n)
	for i := range in {
		in[i] = float64(i % 9)
	}
	app := movingSumApp{half: half, total: n, trigger: true}

	want := make([]float64, n)
	ts := MustNewScheduler[float64, float64](app, SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1})
	if err := ts.Run2(in, want); err != nil {
		t.Fatal(err)
	}

	ss := MustNewScheduler[float64, float64](app, SchedArgs{
		NumThreads: 2, ChunkSize: 1, NumIters: 1, BufferCells: 2,
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < steps; i++ {
			if err := ss.Feed(in); err != nil {
				t.Errorf("feed: %v", err)
				return
			}
		}
		ss.CloseFeed()
	}()
	consumed := 0
	for {
		ss.ResetCombinationMap()
		got := make([]float64, n)
		err := ss.RunShared2(got)
		if err == ErrFeedClosed {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		consumed++
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("step %d out[%d] = %v, want %v", consumed, i, got[i], want[i])
			}
		}
	}
	wg.Wait()
	if consumed != steps {
		t.Fatalf("consumed %d steps, want %d", consumed, steps)
	}
}

func TestPinThreadsEquivalent(t *testing.T) {
	in := histInput(2000)
	want := make([]int64, 10)
	plain := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 4, ChunkSize: 1, NumIters: 1})
	if err := plain.Run(in, want); err != nil {
		t.Fatal(err)
	}
	got := make([]int64, 10)
	pinned := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{
		NumThreads: 4, ChunkSize: 1, NumIters: 1, PinThreads: true,
	})
	if err := pinned.Run(in, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d: pinned %d, plain %d", i, got[i], want[i])
		}
	}
}
