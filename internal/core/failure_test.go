package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/mpi"
)

// faultyObj fails to marshal or unmarshal on demand, for error-path tests.
type faultyObj struct {
	n           int64
	failMarshal bool
}

var errMarshal = errors.New("injected marshal failure")

func (f *faultyObj) Clone() RedObj { cp := *f; return &cp }
func (f *faultyObj) MarshalBinary() ([]byte, error) {
	if f.failMarshal {
		return nil, errMarshal
	}
	return []byte{byte(f.n)}, nil
}
func (f *faultyObj) UnmarshalBinary(b []byte) error {
	if len(b) != 1 {
		return fmt.Errorf("faultyObj: bad length")
	}
	f.n = int64(b[0])
	return nil
}

// faultyApp counts elements into faulty objects.
type faultyApp struct{ failMarshal bool }

func (a faultyApp) NewRedObj() RedObj                           { return &faultyObj{failMarshal: a.failMarshal} }
func (a faultyApp) GenKey(chunk.Chunk, []int, CombMap) int      { return 0 }
func (a faultyApp) Accumulate(_ chunk.Chunk, _ []int, o RedObj) { o.(*faultyObj).n++ }
func (a faultyApp) Merge(src, dst RedObj)                       { dst.(*faultyObj).n += src.(*faultyObj).n }

func TestGlobalCombineMarshalErrorPropagates(t *testing.T) {
	comms := mpi.NewWorld(2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			s := MustNewScheduler[int, int64](faultyApp{failMarshal: true},
				SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1, Comm: comms[r]})
			errs[r] = s.Run(make([]int, 10), nil)
		}()
	}
	wg.Wait()
	// Global combination streams shard segments up the reduction tree, so
	// only ranks that serialize (the senders) observe the marshal error
	// directly; their peers see the aborted stream as a transport failure.
	// Every rank must still fail, keep the phase context, and at least one
	// rank must surface the injected error itself.
	sawInjected := false
	for r, err := range errs {
		if err == nil {
			t.Errorf("rank %d: run succeeded despite injected marshal failure", r)
			continue
		}
		if !strings.Contains(err.Error(), "global combination") {
			t.Errorf("rank %d: error lost its phase context: %v", r, err)
		}
		sawInjected = sawInjected || errors.Is(err, errMarshal)
	}
	if !sawInjected {
		t.Errorf("no rank surfaced the injected marshal failure: %v", errs)
	}
}

func TestEncodeCombinationMapMarshalError(t *testing.T) {
	s := MustNewScheduler[int, int64](faultyApp{failMarshal: true},
		SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	if err := s.Run(make([]int, 5), nil); err != nil {
		t.Fatalf("single-process run should not serialize: %v", err)
	}
	if _, err := s.EncodeCombinationMap(); !errors.Is(err, errMarshal) {
		t.Fatalf("encode: %v, want injected failure", err)
	}
}

func TestDecodeCombinationMapError(t *testing.T) {
	s := MustNewScheduler[int, int64](faultyApp{}, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	if err := s.DecodeCombinationMap([]byte{1, 2, 3}); err == nil {
		t.Fatal("junk decode accepted")
	}
}

func TestDistributedRunOverTCP(t *testing.T) {
	// The full scheduler pipeline over the TCP transport: same result as
	// the in-process world.
	const ranks = 3
	comms, err := mpi.NewTCPWorld(ranks)
	if err != nil {
		t.Fatal(err)
	}
	full := histInput(300)
	per := len(full) / ranks
	results := make([][]int64, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			s := MustNewScheduler[int, int64](bucketApp{width: 10},
				SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1, Comm: comms[r]})
			out := make([]int64, 10)
			if err := s.Run(full[r*per:(r+1)*per], out); err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			results[r] = out
		}()
	}
	wg.Wait()
	want := make([]int64, 10)
	for _, v := range full {
		want[v/10]++
	}
	for r := range results {
		for b := range want {
			if results[r][b] != want[b] {
				t.Fatalf("tcp rank %d bucket %d = %d, want %d", r, b, results[r][b], want[b])
			}
		}
	}
}

func TestSpaceSharingStress(t *testing.T) {
	// A fast producer against a consumer on a tiny buffer, many steps:
	// counts must balance and no step may be lost or duplicated.
	const steps = 200
	s := MustNewScheduler[int, int64](bucketApp{width: 10},
		SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1, BufferCells: 2})
	in := histInput(50)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < steps; i++ {
			if err := s.Feed(in); err != nil {
				t.Errorf("feed %d: %v", i, err)
				return
			}
		}
		s.CloseFeed()
	}()
	consumed := 0
	for {
		s.ResetCombinationMap()
		out := make([]int64, 10)
		err := s.RunShared(out)
		if err == ErrFeedClosed {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, v := range out {
			total += v
		}
		if total != 50 {
			t.Fatalf("step consumed %d elements, want 50", total)
		}
		consumed++
	}
	wg.Wait()
	if consumed != steps {
		t.Fatalf("consumed %d steps, want %d", consumed, steps)
	}
}

func TestEmptyInputRun(t *testing.T) {
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 4, ChunkSize: 1, NumIters: 1})
	out := make([]int64, 10)
	if err := s.Run(nil, out); err != nil {
		t.Fatalf("empty run: %v", err)
	}
	for b, v := range out {
		if v != 0 {
			t.Fatalf("bucket %d = %d from empty input", b, v)
		}
	}
}

func TestNilOutSkipsConversion(t *testing.T) {
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	if err := s.Run(histInput(10), nil); err != nil {
		t.Fatalf("nil out: %v", err)
	}
	if len(s.CombinationMap()) == 0 {
		t.Fatal("combination map empty")
	}
}
