// Package codec is the pluggable wire/checkpoint compression layer. Every
// framed payload the runtime ships — mpi TCP frames, cluster control-plane
// envelopes, checkpoint images — can carry a one-byte Encoding identifier
// naming the codec its body was compressed with, in the style of log-store
// chunk headers. Three encodings are shipped, all stdlib-only:
//
//	None  — the body is the raw payload (always supported, the fallback)
//	Flate — DEFLATE at BestSpeed (compress/flate)
//	Block — a snappy-style LZ block codec implemented in this package
//
// Peers negotiate a codec by exchanging support masks (bit i set ⇔
// Encoding(i) supported) and combining them with Negotiate, which is
// symmetric — both sides compute the same answer independently. A peer
// that advertises nothing (an older build, a pinned-to-raw ablation run)
// degrades the pair to None; unknown mask bits from newer peers are
// ignored. The encoding byte on each frame remains authoritative for
// decoding: receivers accept any encoding they know regardless of what was
// negotiated, so negotiation only governs what a sender may emit.
//
// Payloads shorter than MinSize are never worth a codec's fixed costs
// (barrier tokens, heartbeats, WFQ control frames); callers bypass
// compression below it and senders fall back to None whenever the encoded
// form is not actually smaller, so compression can only shrink wire bytes.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Encoding identifies a codec. The numeric values are written to wire
// frames and checkpoint files — never reorder them.
type Encoding byte

// The shipped encodings, in ascending preference order: Negotiate and Pick
// prefer the highest-valued common codec (Block over Flate over None).
const (
	None Encoding = iota
	Flate
	Block

	numEncodings
)

// ErrUnknown reports an encoding byte this build does not implement.
var ErrUnknown = errors.New("codec: unknown encoding")

// MinSize is the threshold below which payloads bypass compression: the
// codec's per-call overhead (hash table, headers, an extra copy) outweighs
// any plausible saving on frames this small.
const MinSize = 512

// maxRawLen bounds the raw-length prefix a decoder will honor, so a
// corrupt or hostile frame cannot demand an absurd allocation.
const maxRawLen = 1 << 30

// Valid reports whether e names a codec this build implements.
func (e Encoding) Valid() bool { return e < numEncodings }

func (e Encoding) String() string {
	switch e {
	case None:
		return "none"
	case Flate:
		return "flate"
	case Block:
		return "block"
	}
	return fmt.Sprintf("unknown(0x%02x)", byte(e))
}

// Parse resolves a codec name (as accepted by the -codec flags).
func Parse(s string) (Encoding, error) {
	for e := None; e < numEncodings; e++ {
		if strings.EqualFold(s, e.String()) {
			return e, nil
		}
	}
	return 0, fmt.Errorf("%w: %q (supported: none, flate, block)", ErrUnknown, s)
}

// MaskOf builds a support mask from encodings (bit i ⇔ Encoding(i)).
func MaskOf(encs ...Encoding) uint32 {
	var m uint32
	for _, e := range encs {
		m |= 1 << e
	}
	return m | 1<<None // None is always supported
}

// SupportedMask is the mask of every codec this build implements.
func SupportedMask() uint32 { return MaskOf(Flate, Block) }

// Negotiate combines two support masks into the pair's codec: the
// highest-preference encoding both sides implement, None when the masks
// share nothing (a mismatched or silent peer). Mask bits beyond this
// build's encodings are ignored, so a newer peer degrades gracefully.
func Negotiate(a, b uint32) Encoding {
	return Pick(a & b)
}

// Pick returns the highest-preference codec in mask (None for an empty or
// foreign mask).
func Pick(mask uint32) Encoding {
	mask &= SupportedMask()
	for e := numEncodings - 1; e > None; e-- {
		if mask&(1<<e) != 0 {
			return e
		}
	}
	return None
}

// preferred is the process-wide codec pin: 0 means unpinned (advertise
// everything), otherwise it is the mask transports and flags advertise.
// The -codec CLI flags set it once at boot for ablation runs.
var preferred atomic.Uint32

// SetPreferred pins the process to one codec: transports advertise only it
// (plus None, which is always supported). Pinning to None disables
// compression everywhere. Pass-through for ablation flags.
func SetPreferred(e Encoding) {
	preferred.Store(MaskOf(e))
}

// PreferredMask is what this process advertises during negotiation:
// everything it supports, unless SetPreferred pinned a codec.
func PreferredMask() uint32 {
	if m := preferred.Load(); m != 0 {
		return m
	}
	return SupportedMask()
}

// Encode appends the encoded form of src to dst and returns the extended
// slice: a uvarint raw length, then the enc-specific body (src verbatim
// for None). Encode never fails for the shipped encodings on any input;
// the error return exists for unknown encodings.
func Encode(enc Encoding, dst, src []byte) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	switch enc {
	case None:
		return append(dst, src...), nil
	case Flate:
		return flateEncode(dst, src), nil
	case Block:
		return blockEncode(dst, src), nil
	}
	return nil, fmt.Errorf("%w: 0x%02x", ErrUnknown, byte(enc))
}

// Decode reverses Encode, appending the decoded payload to dst. It fails
// with a clear error — never a panic or an unbounded allocation — on an
// unknown encoding byte, a corrupt body, or a body whose decoded size does
// not match its raw-length prefix.
func Decode(enc Encoding, dst, src []byte) ([]byte, error) {
	rawLen64, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, errors.New("codec: truncated raw-length prefix")
	}
	if rawLen64 > maxRawLen {
		return nil, fmt.Errorf("codec: implausible raw length %d", rawLen64)
	}
	rawLen := int(rawLen64)
	body := src[n:]
	switch enc {
	case None:
		if len(body) != rawLen {
			return nil, fmt.Errorf("codec: raw body is %d bytes, frame says %d", len(body), rawLen)
		}
		return append(dst, body...), nil
	case Flate:
		return flateDecode(dst, body, rawLen)
	case Block:
		return blockDecode(dst, body, rawLen)
	}
	return nil, fmt.Errorf("%w: 0x%02x", ErrUnknown, byte(enc))
}

// AppendFrame appends a self-describing frame — one encoding byte, then
// the Encode body — to dst. Checkpoint images and cluster envelopes use
// this form; the mpi transport carries the encoding byte in its own frame
// header instead.
func AppendFrame(dst []byte, enc Encoding, src []byte) ([]byte, error) {
	if !enc.Valid() {
		return nil, fmt.Errorf("%w: 0x%02x", ErrUnknown, byte(enc))
	}
	return Encode(enc, append(dst, byte(enc)), src)
}

// DecodeFrame reverses AppendFrame, appending the decoded payload to dst.
func DecodeFrame(dst, frame []byte) ([]byte, error) {
	if len(frame) == 0 {
		return nil, errors.New("codec: empty frame")
	}
	return Decode(Encoding(frame[0]), dst, frame[1:])
}

// scratchPool recycles encode/decode scratch buffers across wire sends and
// checkpoint writes. Like core's serialization pool, buffers above
// maxPooledScratch are discarded on return so one huge payload cannot pin
// its buffer for the life of the process.
var scratchPool = sync.Pool{New: func() any { return new([]byte) }}

const maxPooledScratch = 1 << 20

// GetScratch draws a zero-length scratch buffer from the pool.
func GetScratch() *[]byte {
	buf := scratchPool.Get().(*[]byte)
	*buf = (*buf)[:0]
	return buf
}

// PutScratch returns a scratch buffer to the pool, discarding it when its
// capacity exceeds the pooling cap.
func PutScratch(buf *[]byte) {
	if cap(*buf) > maxPooledScratch {
		return
	}
	scratchPool.Put(buf)
}
