package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The Block codec is a snappy-style LZ77 block format tuned for the
// runtime's framed payloads: combination maps are sequences of fixed-width
// key | len | payload entries whose headers are mostly zero bytes and whose
// bodies repeat across entries, so a byte-granular match finder with a
// small hash table recovers most of the redundancy at a fraction of
// DEFLATE's cost. The body is a sequence of ops, each introduced by a
// uvarint whose low bit selects the kind:
//
//	v&1 == 0 — literal run: n = v>>1 bytes follow verbatim (n ≥ 1)
//	v&1 == 1 — copy: n = v>>1 bytes from offset uvarint back in the
//	           decoded output (n ≥ blockMinMatch, 1 ≤ offset ≤ decoded);
//	           offset < n is legal and repeats bytes RLE-style
//
// Lengths and offsets are validated against the frame's raw-length prefix
// during decode, so a corrupt body yields an error, never an oversized
// allocation or an out-of-bounds copy.

const (
	// blockMinMatch is the shortest copy worth its two uvarints.
	blockMinMatch = 4
	// blockTableBits sizes the match-finder hash table (entries).
	blockTableBits = 14
)

// blockHash hashes a 4-byte little-endian sequence into the table index
// space (a multiplicative hash with a well-mixed odd constant).
func blockHash(u uint32) uint32 {
	return (u * 0x9E3779B1) >> (32 - blockTableBits)
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// blockAppendLiteral emits src as one literal run (no-op when empty).
func blockAppendLiteral(dst, src []byte) []byte {
	if len(src) == 0 {
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(len(src))<<1)
	return append(dst, src...)
}

// blockEncode appends the Block body for src to dst. It is greedy: the
// first 4-byte hash-table hit that verifies becomes a match, extended as
// far as it runs; everything between matches is a literal run.
func blockEncode(dst, src []byte) []byte {
	var table [1 << blockTableBits]int32 // position+1 of a 4-byte sequence
	lit := 0                             // start of the pending literal run
	i := 0
	for i+blockMinMatch <= len(src) {
		cur := load32(src, i)
		h := blockHash(cur)
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || load32(src, cand) != cur {
			i++
			continue
		}
		n := blockMinMatch
		for i+n < len(src) && src[cand+n] == src[i+n] {
			n++
		}
		dst = blockAppendLiteral(dst, src[lit:i])
		dst = binary.AppendUvarint(dst, uint64(n)<<1|1)
		dst = binary.AppendUvarint(dst, uint64(i-cand))
		i += n
		lit = i
	}
	return blockAppendLiteral(dst, src[lit:])
}

// blockDecode appends the decoded payload to dst, enforcing rawLen as both
// the exact output size and the bound every op is validated against.
func blockDecode(dst, body []byte, rawLen int) ([]byte, error) {
	base := len(dst)
	if rawLen <= maxPooledScratch && cap(dst)-base < rawLen {
		grown := make([]byte, base, base+rawLen)
		copy(grown, dst)
		dst = grown
	}
	for len(body) > 0 {
		v, k := binary.Uvarint(body)
		if k <= 0 {
			return nil, errors.New("codec: block op truncated")
		}
		body = body[k:]
		n := int(v >> 1)
		if n <= 0 || n > rawLen-(len(dst)-base) {
			return nil, fmt.Errorf("codec: block op length %d overruns raw length %d", n, rawLen)
		}
		if v&1 == 0 {
			if n > len(body) {
				return nil, fmt.Errorf("codec: block literal of %d bytes truncated", n)
			}
			dst = append(dst, body[:n]...)
			body = body[n:]
			continue
		}
		off64, k := binary.Uvarint(body)
		if k <= 0 {
			return nil, errors.New("codec: block copy offset truncated")
		}
		body = body[k:]
		off := int(off64)
		if n < blockMinMatch || off <= 0 || off > len(dst)-base {
			return nil, fmt.Errorf("codec: block copy length %d offset %d invalid at %d decoded bytes",
				n, off, len(dst)-base)
		}
		// Byte-wise so overlapping copies (off < n) repeat correctly.
		for j := 0; j < n; j++ {
			dst = append(dst, dst[len(dst)-off])
		}
	}
	if got := len(dst) - base; got != rawLen {
		return nil, fmt.Errorf("codec: block decoded %d bytes, frame says %d", got, rawLen)
	}
	return dst, nil
}
