package codec

import (
	"bytes"
	"testing"
)

// FuzzCodecFrame hardens the self-describing frame decoder: arbitrary
// bytes must yield either a clean error or a payload that re-encodes and
// re-decodes to itself — never a panic, an out-of-bounds copy, or an
// unbounded allocation. This is the decode path every checkpoint restore
// and cluster envelope walks with wire-supplied input.
func FuzzCodecFrame(f *testing.F) {
	seeds := [][]byte{
		{},
		{byte(None)},
		{0x7f, 1, 2, 3}, // unknown encoding
		{byte(Block), 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, // hostile raw length
	}
	for _, payload := range [][]byte{
		{},
		[]byte("smart"),
		bytes.Repeat([]byte{0}, 600),
		bytes.Repeat([]byte("in-situ analytics "), 64),
	} {
		for e := None; e < numEncodings; e++ {
			frame, err := AppendFrame(nil, e, payload)
			if err != nil {
				f.Fatal(err)
			}
			seeds = append(seeds, frame)
		}
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		payload, err := DecodeFrame(nil, frame)
		if err != nil {
			return // rejected cleanly
		}
		enc := Encoding(frame[0])
		re, err := AppendFrame(nil, enc, payload)
		if err != nil {
			t.Fatalf("accepted frame no longer encodes: %v", err)
		}
		back, err := DecodeFrame(nil, re)
		if err != nil {
			t.Fatalf("re-encoded frame no longer decodes: %v", err)
		}
		if !bytes.Equal(back, payload) {
			t.Fatalf("re-encode round trip diverged: %d bytes vs %d", len(payload), len(back))
		}
	})
}
