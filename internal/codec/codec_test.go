package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// corpus builds payloads spanning the shapes the runtime ships: empty,
// tiny, all-zero, combination-map-like framed entries, repeated patterns,
// and incompressible noise.
func corpus() map[string][]byte {
	rng := rand.New(rand.NewSource(42))
	noise := make([]byte, 64*1024)
	rng.Read(noise)

	mapLike := make([]byte, 0, 32*1024)
	mapLike = binary.LittleEndian.AppendUint32(mapLike, 1024)
	for k := 0; k < 1024; k++ {
		mapLike = binary.LittleEndian.AppendUint64(mapLike, uint64(k))
		mapLike = binary.LittleEndian.AppendUint32(mapLike, 8)
		mapLike = binary.LittleEndian.AppendUint64(mapLike, uint64(k%7))
	}

	return map[string][]byte{
		"empty":    {},
		"one":      {0x42},
		"tiny":     []byte("hello"),
		"zeros":    make([]byte, 4096),
		"map-like": mapLike,
		"repeat":   bytes.Repeat([]byte("smart-in-situ-analytics-"), 512),
		"noise":    noise,
	}
}

func TestRoundTripAllEncodings(t *testing.T) {
	for name, payload := range corpus() {
		for e := None; e < numEncodings; e++ {
			t.Run(name+"/"+e.String(), func(t *testing.T) {
				enc, err := Encode(e, nil, payload)
				if err != nil {
					t.Fatal(err)
				}
				dec, err := Decode(e, nil, enc)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(dec, payload) {
					t.Fatalf("round trip mismatch: %d bytes in, %d out", len(payload), len(dec))
				}
				// Appending to a non-empty dst must not disturb the prefix.
				prefix := []byte("prefix")
				dec2, err := Decode(e, append([]byte(nil), prefix...), enc)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.HasPrefix(dec2, prefix) || !bytes.Equal(dec2[len(prefix):], payload) {
					t.Fatal("decode into non-empty dst corrupted data")
				}
			})
		}
	}
}

func TestCompressibleDataShrinks(t *testing.T) {
	payload := corpus()["map-like"]
	for _, e := range []Encoding{Flate, Block} {
		enc, err := Encode(e, nil, payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) >= len(payload) {
			t.Errorf("%s: %d bytes raw -> %d encoded, expected a reduction on map-like data",
				e, len(payload), len(enc))
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := corpus()["map-like"]
	for e := None; e < numEncodings; e++ {
		frame, err := AppendFrame(nil, e, payload)
		if err != nil {
			t.Fatal(err)
		}
		if Encoding(frame[0]) != e {
			t.Fatalf("frame leads with 0x%02x, want %s", frame[0], e)
		}
		dec, err := DecodeFrame(nil, frame)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec, payload) {
			t.Fatalf("%s frame round trip mismatch", e)
		}
	}
}

func TestUnknownEncodingIsCleanError(t *testing.T) {
	if _, err := Decode(Encoding(0x7f), nil, []byte{0, 1, 2}); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Decode(unknown) = %v, want ErrUnknown", err)
	}
	if _, err := Encode(Encoding(0x7f), nil, []byte{1}); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Encode(unknown) = %v, want ErrUnknown", err)
	}
	if _, err := DecodeFrame(nil, []byte{0x7f, 0, 1}); !errors.Is(err, ErrUnknown) {
		t.Fatalf("DecodeFrame(unknown) = %v, want ErrUnknown", err)
	}
	if _, err := AppendFrame(nil, Encoding(0x7f), []byte{1}); !errors.Is(err, ErrUnknown) {
		t.Fatalf("AppendFrame(unknown) = %v, want ErrUnknown", err)
	}
}

func TestCorruptFramesError(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 256)
	for _, e := range []Encoding{None, Flate, Block} {
		enc, err := Encode(e, nil, payload)
		if err != nil {
			t.Fatal(err)
		}
		cases := map[string][]byte{
			"empty":     {},
			"truncated": enc[:len(enc)/2],
			"length-lie": func() []byte {
				lie := binary.AppendUvarint(nil, uint64(len(payload))*2)
				_, n := binary.Uvarint(enc)
				return append(lie, enc[n:]...)
			}(),
		}
		for name, frame := range cases {
			if _, err := Decode(e, nil, frame); err == nil {
				t.Errorf("%s/%s: corrupt frame decoded without error", e, name)
			}
		}
	}
	// A hostile raw length must be rejected before any allocation.
	huge := binary.AppendUvarint(nil, 1<<40)
	if _, err := Decode(Block, nil, huge); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("hostile raw length not rejected: %v", err)
	}
}

func TestParseAndString(t *testing.T) {
	for e := None; e < numEncodings; e++ {
		got, err := Parse(e.String())
		if err != nil || got != e {
			t.Fatalf("Parse(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := Parse("gzip"); err == nil {
		t.Fatal("Parse accepted an unsupported codec name")
	}
	if s := Encoding(0x7f).String(); !strings.Contains(s, "unknown") {
		t.Fatalf("unknown encoding String() = %q", s)
	}
}

func TestNegotiate(t *testing.T) {
	all := SupportedMask()
	cases := []struct {
		a, b uint32
		want Encoding
	}{
		{all, all, Block},                          // full overlap → best codec
		{all, MaskOf(Flate), Flate},                // partial overlap
		{all, MaskOf(None), None},                  // peer pinned to raw
		{all, 0, None},                             // silent peer (older build)
		{MaskOf(Flate), MaskOf(Block), None},       // disjoint codecs
		{all, all | 1<<30, Block},                  // unknown future bits ignored
		{MaskOf(None) | 1<<30, MaskOf(None), None}, // only foreign bits shared
	}
	for _, tc := range cases {
		if got := Negotiate(tc.a, tc.b); got != tc.want {
			t.Errorf("Negotiate(%#x, %#x) = %s, want %s", tc.a, tc.b, got, tc.want)
		}
		if got := Negotiate(tc.b, tc.a); got != tc.want {
			t.Errorf("Negotiate not symmetric for (%#x, %#x)", tc.a, tc.b)
		}
	}
}

func TestPreferredPin(t *testing.T) {
	defer preferred.Store(0)
	if PreferredMask() != SupportedMask() {
		t.Fatal("unpinned process should advertise everything")
	}
	SetPreferred(Flate)
	if PreferredMask() != MaskOf(Flate) {
		t.Fatalf("pinned mask = %#x", PreferredMask())
	}
	if got := Negotiate(PreferredMask(), SupportedMask()); got != Flate {
		t.Fatalf("pinned negotiation = %s, want flate", got)
	}
	SetPreferred(None)
	if got := Negotiate(PreferredMask(), SupportedMask()); got != None {
		t.Fatalf("none-pinned negotiation = %s, want none", got)
	}
}

func TestScratchPoolCapDiscipline(t *testing.T) {
	huge := make([]byte, maxPooledScratch+1)
	PutScratch(&huge)
	for i := 0; i < 64; i++ {
		buf := GetScratch()
		if cap(*buf) > maxPooledScratch {
			t.Fatalf("oversized buffer (cap %d) survived in the scratch pool", cap(*buf))
		}
		PutScratch(buf)
	}
}

func TestBlockOverlappingCopy(t *testing.T) {
	// RLE-style data forces copies whose offset is smaller than their
	// length; the decoder must repeat bytes, not read garbage.
	payload := bytes.Repeat([]byte{0xAB}, 10000)
	enc, err := Encode(Block, nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > 64 {
		t.Fatalf("RLE payload encoded to %d bytes, expected a handful", len(enc))
	}
	dec, err := Decode(Block, nil, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, payload) {
		t.Fatal("overlapping copy round trip mismatch")
	}
}
