package codec

import (
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// The Flate encoding wraps compress/flate at BestSpeed: the wire payloads
// it compresses sit on the global-combination critical path, so throughput
// beats ratio. Writers and readers carry large internal state (~hundreds
// of KiB of window and tables), so both are pooled across calls.

// appendWriter adapts a byte slice to io.Writer for the flate writer and
// the decode copy loop.
type appendWriter struct{ buf []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

var flateWriterPool = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

var flateReaderPool = sync.Pool{New: func() any {
	return flate.NewReader(bytesReaderEmpty())
}}

func bytesReaderEmpty() io.Reader { return &sliceReader{} }

// sliceReader is a resettable no-allocation bytes reader for the pooled
// flate readers (bytes.Reader would also work; this avoids the import and
// keeps Reset in our control).
type sliceReader struct {
	b []byte
	i int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

var sliceReaderPool = sync.Pool{New: func() any { return &sliceReader{} }}

func flateEncode(dst, src []byte) []byte {
	fw := flateWriterPool.Get().(*flate.Writer)
	aw := &appendWriter{buf: dst}
	fw.Reset(aw)
	fw.Write(src) // appendWriter never errors
	fw.Close()
	flateWriterPool.Put(fw)
	return aw.buf
}

func flateDecode(dst, body []byte, rawLen int) ([]byte, error) {
	sr := sliceReaderPool.Get().(*sliceReader)
	sr.b, sr.i = body, 0
	fr := flateReaderPool.Get().(io.ReadCloser)
	defer func() {
		sr.b = nil
		sliceReaderPool.Put(sr)
		flateReaderPool.Put(fr)
	}()
	if err := fr.(flate.Resetter).Reset(sr, nil); err != nil {
		return nil, fmt.Errorf("codec: flate reset: %w", err)
	}
	aw := &appendWriter{buf: dst}
	// Copy at most rawLen+1 bytes: one byte past the declared length is
	// enough to prove the frame lies without decoding an unbounded stream.
	// Raw DEFLATE has no trailer, so corruption and truncation both
	// surface through Read — no Close needed for error detection.
	n, err := io.Copy(aw, io.LimitReader(fr, int64(rawLen)+1))
	if err != nil {
		return nil, fmt.Errorf("codec: flate body: %w", err)
	}
	if n != int64(rawLen) {
		return nil, fmt.Errorf("codec: flate decoded %d bytes, frame says %d", n, rawLen)
	}
	return aw.buf, nil
}
