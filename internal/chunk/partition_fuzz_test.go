package chunk

import "testing"

// FuzzPartition pins the Partition invariants the execution engines build
// on: the splits tile [0, n) exactly (full coverage, no overlap, no gaps),
// every non-empty split starts on a chunkSize boundary (no unit chunk is
// torn across threads), unit counts are balanced to within one chunk, and
// when parts exceeds the unit count the surplus splits are zero-length with
// in-range starts rather than junk the engines would have to special-case.
func FuzzPartition(f *testing.F) {
	f.Add(100, 4, 1)
	f.Add(103, 4, 5)
	f.Add(0, 3, 2)
	f.Add(5, 8, 2) // parts > NumChunks: trailing zero-length splits
	f.Add(1<<20, 16, 7)
	f.Fuzz(func(t *testing.T, n, parts, chunkSize int) {
		n = n & 0xFFFFF // keep allocations sane
		parts = parts&0xFF + 1
		chunkSize = chunkSize&0x3F + 1

		splits := Partition(n, parts, chunkSize)
		if len(splits) != parts {
			t.Fatalf("Partition(%d, %d, %d): %d splits, want exactly %d",
				n, parts, chunkSize, len(splits), parts)
		}

		units := (n + chunkSize - 1) / chunkSize
		minUnits, maxUnits := units, 0
		pos, total := 0, 0
		for i, s := range splits {
			if s.Length < 0 {
				t.Fatalf("split %d has negative length %d", i, s.Length)
			}
			if s.Start != pos {
				t.Fatalf("split %d starts at %d, want %d (gap or overlap)", i, s.Start, pos)
			}
			if s.Length > 0 && s.Start%chunkSize != 0 {
				t.Fatalf("split %d starts at %d, not aligned to chunk size %d",
					i, s.Start, chunkSize)
			}
			if s.Start < 0 || s.End() > n {
				t.Fatalf("split %d = %+v escapes [0, %d)", i, s, n)
			}
			u := s.NumChunks(chunkSize)
			if u < minUnits {
				minUnits = u
			}
			if u > maxUnits {
				maxUnits = u
			}
			pos = s.End()
			total += s.Length
		}
		if total != n {
			t.Fatalf("splits cover %d elements, want %d", total, n)
		}
		// Balance: unit counts differ by at most one chunk across splits
		// (the equal-split premise of the static engine).
		if units > 0 && maxUnits-minUnits > 1 {
			t.Fatalf("unit counts range [%d, %d]; static splits must balance to within one chunk",
				minUnits, maxUnits)
		}
		// parts > NumChunks: exactly parts-units trailing splits are empty,
		// and they all sit at position n.
		if parts > units {
			for i := units; i < parts; i++ {
				if splits[i].Length != 0 || splits[i].Start != n {
					t.Fatalf("surplus split %d = %+v, want zero-length at %d",
						i, splits[i], n)
				}
			}
		}
	})
}
