package chunk

import (
	"testing"
	"testing/quick"
)

func TestChunkEnd(t *testing.T) {
	c := Chunk{Start: 4, Length: 3}
	if c.End() != 7 {
		t.Fatalf("End() = %d, want 7", c.End())
	}
	if got := c.String(); got != "chunk[4,7)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestSplitChunksExact(t *testing.T) {
	s := Split{Start: 0, Length: 12}
	var got []Chunk
	s.Chunks(4, func(c Chunk) bool { got = append(got, c); return true })
	want := []Chunk{{0, 4}, {4, 4}, {8, 4}}
	if len(got) != len(want) {
		t.Fatalf("got %d chunks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("chunk %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSplitChunksTruncatedTail(t *testing.T) {
	s := Split{Start: 10, Length: 10}
	var got []Chunk
	s.Chunks(4, func(c Chunk) bool { got = append(got, c); return true })
	want := []Chunk{{10, 4}, {14, 4}, {18, 2}}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("chunk %d = %v, want %v", i, got[i], want[i])
		}
	}
	if n := s.NumChunks(4); n != 3 {
		t.Errorf("NumChunks = %d, want 3", n)
	}
}

func TestSplitChunksEarlyStop(t *testing.T) {
	s := Split{Start: 0, Length: 100}
	count := 0
	s.Chunks(1, func(c Chunk) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop visited %d chunks, want 5", count)
	}
}

func TestPartitionCoversInput(t *testing.T) {
	for _, tc := range []struct{ n, parts, chunk int }{
		{100, 4, 1}, {100, 4, 3}, {7, 4, 2}, {0, 3, 1}, {5, 8, 1}, {64, 8, 64},
	} {
		splits := Partition(tc.n, tc.parts, tc.chunk)
		if len(splits) != tc.parts {
			t.Fatalf("Partition(%v): %d splits, want %d", tc, len(splits), tc.parts)
		}
		pos, total := 0, 0
		for _, s := range splits {
			if s.Start != pos {
				t.Fatalf("Partition(%v): split starts at %d, want %d", tc, s.Start, pos)
			}
			pos = s.End()
			total += s.Length
		}
		if total != tc.n {
			t.Fatalf("Partition(%v): covers %d elements, want %d", tc, total, tc.n)
		}
	}
}

func TestPartitionChunkAlignment(t *testing.T) {
	// No unit chunk may straddle a split boundary: every split except
	// possibly the one containing the array tail starts at a multiple of
	// chunkSize.
	splits := Partition(103, 4, 5)
	for _, s := range splits {
		if s.Length > 0 && s.Start%5 != 0 {
			t.Errorf("split start %d not aligned to chunk size 5", s.Start)
		}
	}
}

func TestPartitionProperties(t *testing.T) {
	f := func(n uint16, parts, chunk uint8) bool {
		p := int(parts%16) + 1
		c := int(chunk%8) + 1
		nn := int(n % 4096)
		splits := Partition(nn, p, c)
		pos, total := 0, 0
		for _, s := range splits {
			if s.Length < 0 || s.Start != pos {
				return false
			}
			// Empty trailing splits start at n, which needn't be aligned.
			if s.Length > 0 && s.Start%c != 0 {
				return false
			}
			pos = s.End()
			total += s.Length
		}
		return total == nn && len(splits) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlocks(t *testing.T) {
	var lens []int
	Blocks(100, 32, 4, func(s Split) { lens = append(lens, s.Length) })
	want := []int{32, 32, 32, 4}
	if len(lens) != len(want) {
		t.Fatalf("got %d blocks (%v), want %d", len(lens), lens, len(want))
	}
	for i := range want {
		if lens[i] != want[i] {
			t.Errorf("block %d length %d, want %d", i, lens[i], want[i])
		}
	}
}

func TestBlocksSingle(t *testing.T) {
	n := 0
	Blocks(10, 0, 1, func(s Split) {
		n++
		if s.Length != 10 {
			t.Errorf("single block length %d, want 10", s.Length)
		}
	})
	if n != 1 {
		t.Fatalf("got %d blocks, want 1", n)
	}
}

func TestBlocksAlignment(t *testing.T) {
	// Block size 10 with chunk size 4 must round down to 8 so that no
	// 4-element unit straddles a block boundary.
	var starts []int
	Blocks(20, 10, 4, func(s Split) { starts = append(starts, s.Start) })
	for _, st := range starts {
		if st%4 != 0 {
			t.Errorf("block start %d not aligned to chunk size 4", st)
		}
	}
}

func TestBlocksPropertyCoverage(t *testing.T) {
	f := func(n uint16, block, chunk uint8) bool {
		nn := int(n % 2048)
		b := int(block)
		c := int(chunk%16) + 1
		total, pos := 0, 0
		ok := true
		Blocks(nn, b, c, func(s Split) {
			if s.Start != pos {
				ok = false
			}
			pos = s.End()
			total += s.Length
		})
		return ok && total == nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPanics(t *testing.T) {
	assertPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanic("Partition parts", func() { Partition(10, 0, 1) })
	assertPanic("Partition chunk", func() { Partition(10, 1, 0) })
	assertPanic("Partition n", func() { Partition(-1, 1, 1) })
	assertPanic("Chunks size", func() { (Split{0, 4}).Chunks(0, func(Chunk) bool { return true }) })
	assertPanic("NumChunks size", func() { (Split{0, 4}).NumChunks(0) })
	assertPanic("Blocks n", func() { Blocks(-1, 1, 1, func(Split) {}) })
}
