package chunk

import "sync/atomic"

// BatchDeque coordinates one contiguous range of unit-chunk indices between
// an owner thread and any number of thieves. The whole state is a single
// packed atomic word — cursor in the high 32 bits, end in the low 32 — so
// both ends synchronize with one CAS and the structure stays allocation-free
// after construction.
//
// The owner claims batches from the front with PopFront, advancing the
// cursor; this preserves ascending chunk order inside the range, which is
// what keeps per-key accumulation order deterministic under work stealing.
// A thief claims the back half of whatever remains with StealHalf, shrinking
// end; the stolen units form a new contiguous range (typically registered as
// a fresh BatchDeque so they can be stolen from in turn). Ranges only ever
// shrink, so "every deque is empty" is a stable termination condition.
type BatchDeque struct {
	state atomic.Uint64
}

// maxUnit bounds unit indices so cursor and end each fit in 32 bits.
const maxUnit = 1 << 31

func packRange(cursor, end int) uint64 {
	return uint64(cursor)<<32 | uint64(uint32(end))
}

func unpackRange(state uint64) (cursor, end int) {
	return int(state >> 32), int(uint32(state))
}

// NewBatchDeque returns a deque over the unit-index range [start, end).
func NewBatchDeque(start, end int) *BatchDeque {
	d := &BatchDeque{}
	d.Reset(start, end)
	return d
}

// Reset replaces the deque's range with [start, end). Not safe to call while
// owner or thieves are active.
func (d *BatchDeque) Reset(start, end int) {
	if start < 0 || end < start || end > maxUnit {
		panic("chunk: invalid deque range")
	}
	d.state.Store(packRange(start, end))
}

// PopFront claims up to max units from the front of the range and returns
// the first claimed unit index and the claim's size. A zero size means the
// range is exhausted. Only the owner should call PopFront, but the CAS makes
// it safe against concurrent thieves.
func (d *BatchDeque) PopFront(max int) (start, n int) {
	if max < 1 {
		max = 1
	}
	for {
		st := d.state.Load()
		cursor, end := unpackRange(st)
		rem := end - cursor
		if rem <= 0 {
			return 0, 0
		}
		n = max
		if n > rem {
			n = rem
		}
		if d.state.CompareAndSwap(st, packRange(cursor+n, end)) {
			return cursor, n
		}
	}
}

// StealHalf claims the back half of the remaining range (rounding down) and
// returns its first unit index and size. It fails with a zero size when
// fewer than two units remain — a steal must leave the owner at least one
// unit, or thieves and owner could live-lock trading an empty range.
func (d *BatchDeque) StealHalf() (start, n int) {
	for {
		st := d.state.Load()
		cursor, end := unpackRange(st)
		rem := end - cursor
		if rem < 2 {
			return 0, 0
		}
		n = rem / 2
		if d.state.CompareAndSwap(st, packRange(cursor, end-n)) {
			return end - n, n
		}
	}
}

// Remaining reports how many units are still unclaimed.
func (d *BatchDeque) Remaining() int {
	cursor, end := unpackRange(d.state.Load())
	if end < cursor {
		return 0
	}
	return end - cursor
}

// AdaptiveBatch sizes the owner's next PopFront claim by guided
// self-scheduling: half the remaining units divided evenly over the workers,
// floored at min. Early claims are coarse (few deque operations while every
// queue is full), late claims shrink toward min (fine-grained tail so a
// straggler's leftover is stealable), which is the adaptivity rule the
// stealing engine documents.
func AdaptiveBatch(remaining, workers, min int) int {
	if min < 1 {
		min = 1
	}
	if workers < 1 {
		workers = 1
	}
	b := remaining / (2 * workers)
	if b < min {
		b = min
	}
	return b
}

// UnitRange maps the unit-chunk subrange [u, u+n) of the split to its
// element span, truncating the final unit at the split's end exactly as
// Chunks does. Unit u covers elements [Start+u*chunkSize, Start+(u+1)*chunkSize)
// intersected with the split.
func (s Split) UnitRange(chunkSize, u, n int) Split {
	if chunkSize <= 0 {
		panic("chunk: non-positive chunk size")
	}
	if u < 0 || n < 0 {
		panic("chunk: negative unit range")
	}
	start := s.Start + u*chunkSize
	end := start + n*chunkSize
	if end > s.End() {
		end = s.End()
	}
	if start > end {
		start = end
	}
	return Split{Start: start, Length: end - start}
}
