// Package chunk provides the data partitioning primitives used by the Smart
// runtime scheduler: unit chunks, splits, and blocks.
//
// A simulation output partition is processed block by block; each block is
// divided into equal splits (one per thread), and a split is consumed one
// unit chunk at a time. A unit chunk is the application's processing unit
// (e.g. one array element for histogram, one feature vector for k-means) and
// natively preserves array positional information, which is what lets Smart
// support structural analytics such as grid aggregation and moving average.
package chunk

import "fmt"

// Chunk identifies one processing unit inside an input array. Start is the
// index of the chunk's first element in the full (node-local) input array and
// Length is the number of elements in the unit.
type Chunk struct {
	Start  int
	Length int
}

// End returns the index one past the last element of the chunk.
func (c Chunk) End() int { return c.Start + c.Length }

// String implements fmt.Stringer.
func (c Chunk) String() string { return fmt.Sprintf("chunk[%d,%d)", c.Start, c.End()) }

// Split is a contiguous region of the input assigned to a single thread.
// Chunks are generated on the fly while iterating a split.
type Split struct {
	Start  int // index of the first element of the split
	Length int // number of elements in the split
}

// End returns the index one past the last element of the split.
func (s Split) End() int { return s.Start + s.Length }

// Chunks calls fn for every unit chunk of size chunkSize within the split.
// The final chunk is truncated if the split length is not a multiple of
// chunkSize. fn returning false stops the iteration early.
func (s Split) Chunks(chunkSize int, fn func(Chunk) bool) {
	if chunkSize <= 0 {
		panic("chunk: non-positive chunk size")
	}
	for start := s.Start; start < s.End(); start += chunkSize {
		length := chunkSize
		if start+length > s.End() {
			length = s.End() - start
		}
		if !fn(Chunk{Start: start, Length: length}) {
			return
		}
	}
}

// NumChunks reports how many unit chunks of size chunkSize the split holds.
func (s Split) NumChunks(chunkSize int) int {
	if chunkSize <= 0 {
		panic("chunk: non-positive chunk size")
	}
	return (s.Length + chunkSize - 1) / chunkSize
}

// Partition divides n elements into parts splits of near-equal length.
// Splits are aligned to chunkSize boundaries so that no unit chunk straddles
// two splits (otherwise a feature vector could be torn across threads).
// The returned slice always has exactly parts entries; trailing splits may be
// empty when n is small.
func Partition(n, parts, chunkSize int) []Split {
	if parts <= 0 {
		panic("chunk: non-positive part count")
	}
	if chunkSize <= 0 {
		panic("chunk: non-positive chunk size")
	}
	if n < 0 {
		panic("chunk: negative element count")
	}
	units := (n + chunkSize - 1) / chunkSize
	splits := make([]Split, parts)
	base := units / parts
	rem := units % parts
	start := 0
	for i := range splits {
		u := base
		if i < rem {
			u++
		}
		length := u * chunkSize
		if start+length > n {
			length = n - start
		}
		if length < 0 {
			length = 0
		}
		splits[i] = Split{Start: start, Length: length}
		start += length
	}
	return splits
}

// Blocks divides n elements into blocks of at most blockSize elements and
// calls fn for each. Blocks are aligned to chunkSize so units never straddle
// block boundaries. A blockSize of 0 or less means "single block".
func Blocks(n, blockSize, chunkSize int, fn func(Split)) {
	if n < 0 {
		panic("chunk: negative element count")
	}
	if blockSize <= 0 || blockSize >= n {
		fn(Split{Start: 0, Length: n})
		return
	}
	if chunkSize <= 0 {
		panic("chunk: non-positive chunk size")
	}
	// Round the block size down to a whole number of units (at least one).
	aligned := blockSize / chunkSize * chunkSize
	if aligned == 0 {
		aligned = chunkSize
	}
	for start := 0; start < n; start += aligned {
		length := aligned
		if start+length > n {
			length = n - start
		}
		fn(Split{Start: start, Length: length})
	}
}
