package chunk

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestBatchDequePopFrontOrder(t *testing.T) {
	d := NewBatchDeque(3, 10)
	var got []int
	for {
		start, n := d.PopFront(2)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			got = append(got, start+i)
		}
	}
	want := []int{3, 4, 5, 6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("claimed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("claimed %v, want %v (front pops must preserve order)", got, want)
		}
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d after drain", d.Remaining())
	}
}

func TestBatchDequeStealHalf(t *testing.T) {
	d := NewBatchDeque(0, 10)
	start, n := d.StealHalf()
	if start != 5 || n != 5 {
		t.Fatalf("StealHalf = (%d, %d), want (5, 5)", start, n)
	}
	if d.Remaining() != 5 {
		t.Fatalf("Remaining = %d, want 5", d.Remaining())
	}
	// Stealing from a single remaining unit must fail: the owner keeps it.
	d.Reset(7, 8)
	if _, n := d.StealHalf(); n != 0 {
		t.Fatalf("stole %d units from a 1-unit range", n)
	}
	if s, n := d.PopFront(4); s != 7 || n != 1 {
		t.Fatalf("PopFront = (%d, %d), want (7, 1)", s, n)
	}
}

func TestBatchDequeEmpty(t *testing.T) {
	d := NewBatchDeque(4, 4)
	if _, n := d.PopFront(1); n != 0 {
		t.Fatal("PopFront on empty range claimed units")
	}
	if _, n := d.StealHalf(); n != 0 {
		t.Fatal("StealHalf on empty range claimed units")
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", d.Remaining())
	}
}

// TestBatchDequeConcurrent hammers one deque with an owner popping from the
// front and thieves stealing halves, checking that every unit is claimed
// exactly once. Run under -race this also exercises the CAS protocol.
func TestBatchDequeConcurrent(t *testing.T) {
	const units = 1 << 12
	const thieves = 4
	d := NewBatchDeque(0, units)
	claimed := make([]atomic.Int32, units)
	claim := func(start, n int) {
		for i := 0; i < n; i++ {
			claimed[start+i].Add(1)
		}
	}
	var wg sync.WaitGroup
	wg.Add(1 + thieves)
	go func() { // owner
		defer wg.Done()
		for {
			start, n := d.PopFront(AdaptiveBatch(d.Remaining(), thieves+1, 1))
			if n == 0 {
				return
			}
			claim(start, n)
		}
	}()
	for i := 0; i < thieves; i++ {
		go func() {
			defer wg.Done()
			for {
				start, n := d.StealHalf()
				if n == 0 {
					if d.Remaining() == 0 {
						return
					}
					continue
				}
				claim(start, n)
			}
		}()
	}
	wg.Wait()
	for i := range claimed {
		if c := claimed[i].Load(); c != 1 {
			t.Fatalf("unit %d claimed %d times", i, c)
		}
	}
}

func TestAdaptiveBatch(t *testing.T) {
	cases := []struct{ remaining, workers, min, want int }{
		{1000, 4, 1, 125}, // coarse while the queue is full
		{16, 4, 1, 2},     // shrinking as it drains
		{3, 4, 1, 1},      // floored at min
		{0, 4, 8, 8},      // min dominates an empty queue
		{100, 0, 0, 50},   // degenerate workers/min clamp to 1
	}
	for _, c := range cases {
		if got := AdaptiveBatch(c.remaining, c.workers, c.min); got != c.want {
			t.Errorf("AdaptiveBatch(%d, %d, %d) = %d, want %d",
				c.remaining, c.workers, c.min, got, c.want)
		}
	}
	// Monotone shrink: batches never grow as the queue drains.
	prev := AdaptiveBatch(1<<20, 8, 4)
	for rem := 1 << 19; rem > 0; rem /= 2 {
		b := AdaptiveBatch(rem, 8, 4)
		if b > prev {
			t.Fatalf("batch grew from %d to %d as remaining shrank to %d", prev, b, rem)
		}
		prev = b
	}
}

func TestUnitRange(t *testing.T) {
	sp := Split{Start: 100, Length: 25} // units of 4: [100,104) ... [124,125)
	cases := []struct {
		u, n  int
		start int
		len   int
	}{
		{0, 1, 100, 4},
		{2, 3, 108, 12},
		{5, 2, 120, 5},  // truncated tail unit
		{6, 1, 124, 1},  // the lone tail element
		{7, 3, 125, 0},  // past the end
		{0, 0, 100, 0},  // empty claim
		{5, 10, 120, 5}, // oversized claim clamps at the split end
	}
	for _, c := range cases {
		got := sp.UnitRange(4, c.u, c.n)
		if got.Start != c.start || got.Length != c.len {
			t.Errorf("UnitRange(4, %d, %d) = %+v, want {%d %d}", c.u, c.n, got, c.start, c.len)
		}
	}
}

// TestUnitRangeMatchesChunks checks that walking a split unit by unit through
// UnitRange visits exactly the chunks Chunks generates — the property the
// stealing engine relies on to translate deque claims into element spans.
func TestUnitRangeMatchesChunks(t *testing.T) {
	f := func(start, length, chunkSize uint8) bool {
		cs := int(chunkSize)%7 + 1
		sp := Split{Start: int(start), Length: int(length)}
		var fromChunks []Chunk
		sp.Chunks(cs, func(c Chunk) bool {
			fromChunks = append(fromChunks, c)
			return true
		})
		for u, want := range fromChunks {
			got := sp.UnitRange(cs, u, 1)
			if got.Start != want.Start || got.Length != want.Length {
				return false
			}
		}
		// A multi-unit range must equal the concatenation of its units.
		whole := sp.UnitRange(cs, 0, len(fromChunks))
		return whole.Start == sp.Start && whole.Length == sp.Length
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
