package cluster

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/scipioneer/smart/internal/codec"
	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/obs"
	"github.com/scipioneer/smart/internal/serve"
)

// bigEnvelope is a ckpt upload whose payload dwarfs codec.MinSize — the
// message class envelope compression exists for.
func bigEnvelope() envelope {
	return envelope{
		Kind:  kindCkpt,
		Job:   "job-1",
		Ckpt:  bytes.Repeat([]byte("SMARTCK1 state bytes "), 512),
		Steps: 17,
	}
}

func TestEnvelopeRoundTripPerCodec(t *testing.T) {
	env := bigEnvelope()
	rawWire, err := encodeEnvelope(codec.None, env)
	if err != nil {
		t.Fatal(err)
	}
	for e := codec.None; e.Valid(); e++ {
		wire, err := encodeEnvelope(e, env)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		got, err := decodeEnvelope(wire)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if !reflect.DeepEqual(got, env) {
			t.Fatalf("%s: envelope round trip mismatch", e)
		}
		if e != codec.None && len(wire) >= len(rawWire) {
			t.Errorf("%s: %d wire bytes, raw is %d — no reduction on a checkpoint upload", e, len(wire), len(rawWire))
		}
	}

	// Tiny control chatter ships raw even with a codec negotiated.
	beat, err := encodeEnvelope(codec.Block, envelope{Kind: kindBeat})
	if err != nil {
		t.Fatal(err)
	}
	if codec.Encoding(beat[0]) != codec.None {
		t.Fatalf("beat envelope compressed: leading byte %#x", beat[0])
	}
}

func TestEnvelopeUnknownEncodingIsCleanError(t *testing.T) {
	if _, err := decodeEnvelope([]byte{0x7f, 1, 2, 3}); !errors.Is(err, codec.ErrUnknown) {
		t.Fatalf("decodeEnvelope(unknown byte) = %v, want to wrap codec.ErrUnknown", err)
	}
	if _, err := decodeEnvelope(nil); err == nil {
		t.Fatal("decodeEnvelope(empty) succeeded")
	}
}

func TestEnvelopeSendRecvAcrossWorld(t *testing.T) {
	comms := mpi.NewWorld(2)
	env := bigEnvelope()
	for e := codec.None; e.Valid(); e++ {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := send(comms[0], 1, tagUp, e, env); err != nil {
				t.Error(err)
			}
		}()
		got, err := recvEnv(comms[1], 0, tagUp)
		wg.Wait()
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if !reflect.DeepEqual(got, env) {
			t.Fatalf("%s: envelope differs after send/recv", e)
		}
	}
}

// TestClusterMixedCodecFallsBackToNone runs a real cluster whose coordinator
// and workers support disjoint codecs: negotiation must settle on raw JSON
// and jobs must run to completion exactly as before.
func TestClusterMixedCodecFallsBackToNone(t *testing.T) {
	comms, err := mpi.NewTCPWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	disp, err := NewDispatcher(comms[0], Config{
		Registry:         obs.NewRegistry(),
		CheckpointDir:    t.TempDir(),
		Heartbeat:        20 * time.Millisecond,
		HeartbeatTimeout: 10 * time.Second,
		CodecMask:        codec.MaskOf(codec.Flate),
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 3; r++ {
		go Worker(comms[r], WorkerConfig{
			Registry:  obs.NewRegistry(),
			Heartbeat: 20 * time.Millisecond,
			WorkDir:   t.TempDir(),
			CodecMask: codec.MaskOf(codec.Block),
		})
	}
	srv := serve.NewServer(serve.Config{
		Executor: disp, Registry: obs.NewRegistry(), Queue: 4, Workers: 2,
		CheckpointDir: t.TempDir(),
	})
	defer func() {
		srv.Drain(100 * time.Millisecond)
		disp.Shutdown()
	}()

	j, err := srv.Submit(serve.JobSpec{App: "histogram", Elems: 4096, Tenant: "mixed"})
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, j, 30*time.Second)
	if v.Status != serve.StatusDone || v.Result == nil {
		t.Fatalf("mixed-codec job: status %q (err %q)", v.Status, v.Error)
	}
	// The disjoint masks must have negotiated every worker link down to raw.
	for r := 1; r < 3; r++ {
		if e := disp.encFor(r); e != codec.None {
			t.Errorf("worker %d negotiated %s, want none on disjoint masks", r, e)
		}
	}
}

// TestClusterNegotiatesEnvelopeCodec pins the happy path: default masks on
// both sides settle every worker link on the build's best codec.
func TestClusterNegotiatesEnvelopeCodec(t *testing.T) {
	tc := startCluster(t, 3, serve.Config{Queue: 4})
	j, err := tc.server.Submit(serve.JobSpec{App: "histogram", Elems: 4096, Tenant: "neg"})
	if err != nil {
		t.Fatal(err)
	}
	if v := waitTerminal(t, j, 30*time.Second); v.Status != serve.StatusDone {
		t.Fatalf("job status %q (err %q)", v.Status, v.Error)
	}
	want := codec.Pick(codec.SupportedMask())
	for r := 1; r < 3; r++ {
		if e := tc.disp.encFor(r); e != want {
			t.Errorf("worker %d negotiated %s, want %s", r, e, want)
		}
	}
}
