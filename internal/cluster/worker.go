package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"github.com/scipioneer/smart/internal/codec"
	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/obs"
	"github.com/scipioneer/smart/internal/serve"
)

// WorkerConfig configures a worker rank's job-execution loop.
type WorkerConfig struct {
	// Heartbeat is the beat interval (default 100ms); it must not exceed the
	// coordinator's HeartbeatTimeout or the rank will be declared dead.
	Heartbeat time.Duration
	// Mem, when non-nil, is the node the rank's job runtimes charge their
	// data structures against.
	Mem *memmodel.Node
	// WorkDir stages per-step checkpoint files before their bytes are
	// uploaded (default os.TempDir()).
	WorkDir string
	// Registry receives the worker metrics and is what the coordinator's
	// final obs.Gather collects (default obs.DefaultRegistry()).
	Registry *obs.Registry
	// CodecMask is the codec-support mask this worker advertises in its
	// hello (zero means codec.PreferredMask()). Uplink envelopes use
	// codec.Negotiate of this mask and the mask the coordinator echoes on
	// the first assign; until then — and against a maskless coordinator —
	// the uplink stays raw.
	CodecMask uint32
}

// errCancel and errDrainCancel are the cancellation causes a coordinator
// cancel installs; the drain variant asks for a final checkpoint upload. It
// wraps serve.ErrDrainCheckpoint so the program's run loop recognizes it as
// drain-class and stops at a step boundary, keeping the checkpoint exact.
var (
	errCancel      = errors.New("cluster: cancelled by coordinator")
	errDrainCancel = fmt.Errorf("cluster: drain cancel, checkpoint requested: %w", serve.ErrDrainCheckpoint)
)

// worker is one rank's execution state.
type worker struct {
	comm *mpi.Comm
	cfg  WorkerConfig
	met  workerMetrics

	// upEnc is the uplink envelope codec, negotiated from the coordinator's
	// assign-time mask. Atomic: the control loop writes it, the heartbeat
	// and executor goroutines read it on every send.
	upEnc atomic.Uint32

	// running maps job id to its cancel func; the control loop writes it,
	// executor goroutines remove their own entries.
	running map[string]context.CancelCauseFunc
	runMu   chan struct{} // 1-token semaphore guarding running
}

// enc reports the current uplink envelope codec.
func (w *worker) enc() codec.Encoding { return codec.Encoding(w.upEnc.Load()) }

// Worker runs rank comm.Rank()'s job-execution loop until the coordinator
// sends shutdown (returning nil) or the control link drops (returning the
// receive error). Jobs execute concurrently, each on its own goroutine; a
// multi-rank job builds its scheduler over a sub-communicator of the
// assignment's member ranks so the global combination spans them.
func Worker(comm *mpi.Comm, cfg WorkerConfig) error {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 100 * time.Millisecond
	}
	if cfg.WorkDir == "" {
		cfg.WorkDir = os.TempDir()
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.DefaultRegistry()
	}
	if cfg.CodecMask == 0 {
		cfg.CodecMask = codec.PreferredMask()
	}
	w := &worker{
		comm:    comm,
		cfg:     cfg,
		met:     newWorkerMetrics(cfg.Registry),
		running: make(map[string]context.CancelCauseFunc),
		runMu:   make(chan struct{}, 1),
	}
	w.runMu <- struct{}{}

	stop := make(chan struct{})
	defer close(stop)
	go w.heartbeat(stop)
	send(comm, 0, tagUp, codec.None, envelope{Kind: kindHello, Codecs: cfg.CodecMask})

	for {
		env, err := recvEnv(comm, 0, tagCtl)
		if err != nil {
			return fmt.Errorf("cluster: rank %d lost the coordinator: %w", comm.Rank(), err)
		}
		switch env.Kind {
		case kindAssign:
			if env.Codecs != 0 {
				w.upEnc.Store(uint32(codec.Negotiate(cfg.CodecMask, env.Codecs)))
			}
			go w.execute(env)
		case kindCancel:
			w.cancel(env.Job, env.Err, env.Drain)
		case kindGather:
			// The coordinator is entering the metrics collective; join it.
			obs.Gather(w.comm, cfg.Registry)
		case kindShutdown:
			return nil
		}
	}
}

func (w *worker) heartbeat(stop <-chan struct{}) {
	tick := time.NewTicker(w.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			if send(w.comm, 0, tagUp, w.enc(), envelope{Kind: kindBeat}) != nil {
				return
			}
			w.met.heartbeats.Inc()
		}
	}
}

// cancel stops a running job with the requested cause.
func (w *worker) cancel(job, cause string, drain bool) {
	<-w.runMu
	cancel := w.running[job]
	w.runMu <- struct{}{}
	if cancel == nil {
		return
	}
	if drain {
		cancel(errDrainCancel)
	} else if cause != "" {
		cancel(fmt.Errorf("%w: %s", errCancel, cause))
	} else {
		cancel(errCancel)
	}
}

// execute runs one assignment to a terminal envelope.
func (w *worker) execute(env envelope) {
	res := w.run(env)
	res.Kind, res.Job = kindResult, env.Job
	w.met.executed.Inc()
	send(w.comm, 0, tagUp, w.enc(), res)
}

func (w *worker) run(env envelope) envelope {
	spec := env.Spec
	members := env.Members
	idx := 0
	for i, r := range members {
		if r == w.comm.Rank() {
			idx = i
		}
	}
	lead := idx == 0

	var sub *mpi.Comm
	if len(members) > 1 {
		// Partition the per-step data across the members: each rank
		// analyzes its share of the elements from its own deterministic
		// stream, and the scheduler's global combination over the
		// sub-communicator merges the per-rank maps every time-step.
		share := spec.Elems / len(members)
		rem := spec.Elems - share*len(members)
		spec.Elems = share
		if idx == 0 {
			spec.Elems += rem
		}
		spec.Seed += 0x9E3779B97F4A7C15 * uint64(idx)
		var err error
		sub, err = w.comm.SubComm(members, env.Band)
		if err != nil {
			return envelope{Err: err.Error()}
		}
	}

	_, prog, err := serve.Compile(spec, w.cfg.Mem, sub)
	if err != nil {
		return envelope{Err: err.Error()}
	}
	if len(env.Resume) > 0 {
		if err := w.restore(prog, env.Resume, env.ResumeSteps); err != nil {
			return envelope{Err: err.Error()}
		}
	}
	trace := obs.TraceContext{TraceID: env.TraceID, SpanID: env.SpanID}
	sp := obs.Default().StartSpan(trace, "cluster", "execute "+env.Job)
	sp.SetRank(w.comm.Rank())
	sp.SetAttr("app", spec.App)
	sp.SetAttr("lead", lead)
	defer sp.End()
	prog.SetTraceContext(sp.Context())

	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	<-w.runMu
	w.running[env.Job] = cancel
	w.runMu <- struct{}{}
	defer func() {
		<-w.runMu
		delete(w.running, env.Job)
		w.runMu <- struct{}{}
	}()

	// Only the lead forwards stream records (the others would duplicate
	// them); only a single-rank checkpointable job uploads per-step
	// checkpoints — a multi-rank job's state is spread across its members,
	// so a central restore point does not exist and the job is not retried.
	emit := func(rec serve.StreamRecord) {
		if !lead {
			return
		}
		if rec.Type == "step" && len(members) <= 1 && prog.CanCheckpoint() {
			if buf, err := w.checkpointBytes(prog, env.Job); err == nil {
				send(w.comm, 0, tagUp, w.enc(), envelope{Kind: kindCkpt, Job: env.Job,
					Ckpt: buf, Steps: prog.StepsDone()})
				w.met.ckptUploads.Inc()
			}
		}
		rec.Job = env.Job
		send(w.comm, 0, tagUp, w.enc(), envelope{Kind: kindEmit, Job: env.Job, Record: &rec})
	}

	result, err := prog.Run(ctx, emit)
	if err == nil {
		if !lead {
			return envelope{} // completion ack; the lead carries the payload
		}
		buf, err := json.Marshal(result)
		if err != nil {
			return envelope{Err: fmt.Sprintf("cluster: encode result: %v", err)}
		}
		return envelope{Result: buf}
	}
	if errors.Is(context.Cause(ctx), errDrainCancel) && prog.CanCheckpoint() {
		// Drain: hand the state back instead of discarding it. A
		// drain-class cancel stops the run at a step boundary (the shield
		// in the run loop lets the in-flight step finish its merges), so
		// the checkpoint is exact.
		buf, ckErr := w.checkpointBytes(prog, env.Job)
		if ckErr != nil {
			return envelope{Err: fmt.Sprintf("drain checkpoint failed: %v (run: %v)", ckErr, err)}
		}
		return envelope{Checkpointed: true, Ckpt: buf, Steps: prog.StepsDone()}
	}
	return envelope{Err: err.Error()}
}

// restore loads uploaded checkpoint bytes into the program via a staging
// file, marking stepsDone time-steps as already analyzed.
func (w *worker) restore(prog *serve.Program, ck []byte, stepsDone int) error {
	path := filepath.Join(w.cfg.WorkDir, fmt.Sprintf("smart-restore-%d-%d.ck", os.Getpid(), time.Now().UnixNano()))
	if err := os.WriteFile(path, ck, 0o644); err != nil {
		return err
	}
	defer os.Remove(path)
	return prog.Restore(path, stepsDone)
}

// checkpointBytes persists the program's state to a staging file and
// returns its bytes.
func (w *worker) checkpointBytes(prog *serve.Program, job string) ([]byte, error) {
	path := filepath.Join(w.cfg.WorkDir, fmt.Sprintf("smart-ck-%d-%s.ck", os.Getpid(), job))
	defer os.Remove(path)
	if err := prog.Checkpoint(path); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}
