package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/scipioneer/smart/internal/codec"
	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/obs"
	"github.com/scipioneer/smart/internal/serve"
)

// Config configures the coordinator-side dispatcher.
type Config struct {
	// RetryBudget is how many times a single-rank job lost to a dead worker
	// is re-dispatched before it fails terminally (default 2). Multi-rank
	// jobs are never retried: their combination state is spread across the
	// member ranks, so one member's death loses part of it.
	RetryBudget int
	// Heartbeat is the worker beat interval (default 100ms); a worker whose
	// uplink has been silent for HeartbeatTimeout (default 10×Heartbeat) is
	// declared dead even if its connection is still up.
	Heartbeat        time.Duration
	HeartbeatTimeout time.Duration
	// CheckpointDir receives drain checkpoints and resume sidecars uploaded
	// by workers (default os.TempDir()).
	CheckpointDir string
	// CancelWait bounds how long Execute waits for a cancelled job's workers
	// to acknowledge before giving up on them (default 10s).
	CancelWait time.Duration
	// Registry receives the dispatcher metrics (default obs.DefaultRegistry()).
	Registry *obs.Registry
	// Watch, when non-nil, is the stall watch the dispatcher brackets every
	// assignment in: the cluster's existing stall watchdog then names ranks
	// wedged inside a job the same way it names ranks wedged in a
	// collective, on the same clock the heartbeat monitor runs on.
	Watch *obs.StallWatch
	// CodecMask is the codec-support mask this coordinator advertises for
	// control-plane envelopes (zero means codec.PreferredMask(): everything
	// the build supports unless the process pinned a codec). Each worker
	// link uses codec.Negotiate of this mask and the worker's hello mask, so
	// a mismatched pair degrades to raw JSON instead of failing.
	CodecMask uint32
}

func (cfg *Config) fill() {
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 2
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 100 * time.Millisecond
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 10 * cfg.Heartbeat
	}
	if cfg.CheckpointDir == "" {
		cfg.CheckpointDir = os.TempDir()
	}
	if cfg.CancelWait <= 0 {
		cfg.CancelWait = 10 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.DefaultRegistry()
	}
	if cfg.CodecMask == 0 {
		cfg.CodecMask = codec.PreferredMask()
	}
}

// workerState is the dispatcher's view of one worker rank.
type workerState struct {
	rank     int
	alive    bool
	inflight int
	lastSeen time.Time
	// enc is the envelope codec negotiated from the worker's hello mask;
	// codec.None until the hello arrives (and forever, for an old worker
	// that never sends a mask).
	enc codec.Encoding
}

// dispatch is one job's dispatch state.
type dispatch struct {
	job serve.RemoteJob
	// members are the world ranks currently executing the job; the first is
	// the lead rank, which reports the result. pending counts members whose
	// result envelope is outstanding.
	members []int
	pending int
	retries int
	// ckpt/steps hold the latest per-step checkpoint upload — the restore
	// point a retry starts from.
	ckpt  []byte
	steps int
	// Outcome, filled by the lead's result envelope (or a death).
	result       any
	errMsg       string
	checkpointed bool
	finalCkpt    []byte
	finished     bool
	done         chan struct{}
	// watchTokens are the stall-watch entries per member rank.
	watchTokens map[int]uint64
}

// Dispatcher is the coordinator's execution plane: it implements
// serve.Executor over a rank world whose rank 0 it runs on. Worker ranks
// are 1..size-1; rank 0 never executes jobs — it owns admission, dispatch,
// retry, and the metrics gather.
type Dispatcher struct {
	comm *mpi.Comm
	cfg  Config
	met  coordMetrics

	mu       sync.Mutex
	workers  map[int]*workerState
	jobs     map[string]*dispatch
	nextBand int
	closed   bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewDispatcher builds the dispatcher on comm (which must be rank 0 of a
// world with at least one worker rank) and starts its uplink receivers and
// heartbeat monitor.
func NewDispatcher(comm *mpi.Comm, cfg Config) (*Dispatcher, error) {
	if comm.Rank() != 0 {
		return nil, fmt.Errorf("cluster: dispatcher must run on rank 0, not %d", comm.Rank())
	}
	if comm.Size() < 2 {
		return nil, fmt.Errorf("cluster: world of size %d has no worker ranks", comm.Size())
	}
	cfg.fill()
	d := &Dispatcher{
		comm:    comm,
		cfg:     cfg,
		met:     newCoordMetrics(cfg.Registry),
		workers: make(map[int]*workerState),
		jobs:    make(map[string]*dispatch),
		stop:    make(chan struct{}),
	}
	now := time.Now()
	for r := 1; r < comm.Size(); r++ {
		d.workers[r] = &workerState{rank: r, alive: true, lastSeen: now}
		d.met.workers.Add(1)
		d.wg.Add(1)
		go d.receiver(r)
	}
	d.wg.Add(1)
	go d.monitor()
	return d, nil
}

// Workers reports the currently live worker count.
func (d *Dispatcher) Workers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, w := range d.workers {
		if w.alive {
			n++
		}
	}
	return n
}

// Execute implements serve.Executor: dispatch the job, then wait for its
// terminal envelope — riding out worker deaths and retries, which the
// receiver goroutines handle underneath.
func (d *Dispatcher) Execute(ctx context.Context, job serve.RemoteJob) (any, error) {
	disp := &dispatch{job: job, done: make(chan struct{}), watchTokens: make(map[int]uint64)}
	if job.ResumeCheckpoint != "" {
		// A job restored from a previous coordinator life: ship the on-disk
		// checkpoint bytes to whatever worker gets it.
		buf, err := os.ReadFile(job.ResumeCheckpoint)
		if err != nil {
			return nil, fmt.Errorf("cluster: read resume checkpoint: %w", err)
		}
		disp.ckpt, disp.steps = buf, job.ResumeSteps
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, errors.New("cluster: dispatcher shut down")
	}
	d.jobs[job.ID] = disp
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		delete(d.jobs, job.ID)
		d.mu.Unlock()
	}()

	if err := d.dispatchJob(disp); err != nil {
		return nil, err
	}
	select {
	case <-disp.done:
		return d.outcome(disp)
	case <-ctx.Done():
		cause := context.Cause(ctx)
		drain := errors.Is(cause, serve.ErrDrainCheckpoint)
		d.cancelMembers(disp, cause.Error(), drain)
		select {
		case <-disp.done:
			return d.outcome(disp)
		case <-time.After(d.cfg.CancelWait):
			return nil, fmt.Errorf("cluster: job %s cancel unacknowledged by %v: %w",
				job.ID, disp.members, cause)
		}
	}
}

// outcome converts a finished dispatch into Execute's contract.
func (d *Dispatcher) outcome(disp *dispatch) (any, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if disp.checkpointed {
		path, err := serve.WriteResumeArtifacts(d.cfg.CheckpointDir, disp.job.ID,
			disp.job.Spec, disp.finalCkpt, disp.steps)
		if err != nil {
			return nil, fmt.Errorf("cluster: persist drain checkpoint: %w", err)
		}
		return nil, &serve.CheckpointedError{Path: path, StepsDone: disp.steps}
	}
	if disp.errMsg != "" {
		return nil, errors.New(disp.errMsg)
	}
	return disp.result, nil
}

// dispatchJob picks the job's worker ranks and sends the assignments.
// Called for the initial dispatch and for every retry.
func (d *Dispatcher) dispatchJob(disp *dispatch) error {
	n := disp.job.Spec.Ranks
	if n < 1 {
		n = 1
	}
	d.mu.Lock()
	var alive []*workerState
	for _, w := range d.workers {
		if w.alive {
			alive = append(alive, w)
		}
	}
	if len(alive) < n {
		d.mu.Unlock()
		return fmt.Errorf("cluster: job %s needs %d worker ranks, %d alive", disp.job.ID, n, len(alive))
	}
	// Least-loaded first, rank as the tiebreak; members sorted ascending so
	// every member passes SubComm the same rank order.
	sort.Slice(alive, func(i, j int) bool {
		if alive[i].inflight != alive[j].inflight {
			return alive[i].inflight < alive[j].inflight
		}
		return alive[i].rank < alive[j].rank
	})
	members := make([]int, n)
	for i := 0; i < n; i++ {
		members[i] = alive[i].rank
		alive[i].inflight++
	}
	sort.Ints(members)
	disp.members = members
	disp.pending = n
	d.nextBand++
	band := d.nextBand
	env := envelope{
		Kind:    kindAssign,
		Job:     disp.job.ID,
		Spec:    disp.job.Spec,
		Members: members,
		Band:    band,
		TraceID: disp.job.Trace.TraceID,
		SpanID:  disp.job.Trace.SpanID,
		Codecs:  d.cfg.CodecMask,
	}
	if n == 1 && len(disp.ckpt) > 0 {
		env.Resume, env.ResumeSteps = disp.ckpt, disp.steps
	}
	if d.cfg.Watch != nil {
		for _, r := range members {
			disp.watchTokens[r] = d.cfg.Watch.Enter(r, "job "+disp.job.ID)
		}
	}
	d.mu.Unlock()

	sp := obs.Default().StartSpan(disp.job.Trace, "cluster", "dispatch "+disp.job.ID)
	sp.SetAttr("members", fmt.Sprint(members))
	sp.SetAttr("retry", disp.retries)
	defer sp.End()
	d.met.dispatched.Inc()
	for _, r := range members {
		if err := send(d.comm, r, tagCtl, d.encFor(r), env); err != nil {
			// The connection is already gone; the receiver's death handling
			// owns the retry, so the job is not failed here.
			d.handleDeath(r)
		}
	}
	return nil
}

// cancelMembers sends a cancel to every live member of the dispatch.
func (d *Dispatcher) cancelMembers(disp *dispatch, cause string, drain bool) {
	d.mu.Lock()
	var targets []int
	for _, r := range disp.members {
		if w := d.workers[r]; w != nil && w.alive {
			targets = append(targets, r)
		}
	}
	d.mu.Unlock()
	for _, r := range targets {
		send(d.comm, r, tagCtl, d.encFor(r), envelope{Kind: kindCancel, Job: disp.job.ID, Err: cause, Drain: drain})
	}
}

// receiver drains one worker's uplink. A receive error means the worker's
// endpoint dropped — the fast path of rank-death detection.
func (d *Dispatcher) receiver(rank int) {
	defer d.wg.Done()
	for {
		env, err := recvEnv(d.comm, rank, tagUp)
		if err != nil {
			d.mu.Lock()
			closed := d.closed
			d.mu.Unlock()
			if !closed {
				d.handleDeath(rank)
			}
			return
		}
		d.mu.Lock()
		if w := d.workers[rank]; w != nil {
			w.lastSeen = time.Now()
		}
		disp := d.jobs[env.Job]
		// Per-job messages only count from current members: a worker that
		// was declared dead on a stale heartbeat but is actually alive must
		// not interleave its records with the retry's.
		member := disp != nil && !disp.finished && memberOf(disp.members, rank)
		d.mu.Unlock()
		switch env.Kind {
		case kindHello:
			// lastSeen already refreshed; record the worker's codec support
			// so every later control message to it uses the negotiated
			// encoding (a maskless hello from an old build stays on raw).
			d.mu.Lock()
			if w := d.workers[rank]; w != nil {
				w.enc = codec.Negotiate(d.cfg.CodecMask, env.Codecs)
			}
			d.mu.Unlock()
		case kindBeat:
			// lastSeen already refreshed; every uplink message is a beat.
		case kindEmit:
			if member && env.Record != nil {
				disp.job.Emit(*env.Record)
			}
		case kindCkpt:
			d.mu.Lock()
			if disp != nil && !disp.finished && memberOf(disp.members, rank) {
				disp.ckpt, disp.steps = env.Ckpt, env.Steps
			}
			d.mu.Unlock()
		case kindResult:
			d.handleResult(rank, env)
		}
	}
}

// encFor reports the envelope codec negotiated with worker rank.
func (d *Dispatcher) encFor(rank int) codec.Encoding {
	d.mu.Lock()
	defer d.mu.Unlock()
	if w := d.workers[rank]; w != nil {
		return w.enc
	}
	return codec.None
}

func memberOf(members []int, rank int) bool {
	for _, r := range members {
		if r == rank {
			return true
		}
	}
	return false
}

// handleResult processes a member's terminal envelope for its job.
func (d *Dispatcher) handleResult(rank int, env envelope) {
	d.mu.Lock()
	if w := d.workers[rank]; w != nil && w.inflight > 0 {
		w.inflight--
	}
	disp := d.jobs[env.Job]
	if disp == nil || disp.finished || !memberOf(disp.members, rank) {
		// A job already finished (or re-dispatched elsewhere after this
		// worker was declared dead); the inflight slot was the only state
		// to reconcile.
		d.mu.Unlock()
		return
	}
	if d.cfg.Watch != nil {
		if tok, ok := disp.watchTokens[rank]; ok {
			d.cfg.Watch.Exit(tok)
			delete(disp.watchTokens, rank)
		}
	}
	if rank == disp.members[0] { // the lead carries the job outcome
		switch {
		case env.Checkpointed:
			disp.checkpointed = true
			disp.finalCkpt, disp.steps = env.Ckpt, env.Steps
		case env.Err != "":
			disp.errMsg = env.Err
		default:
			var v any
			if err := json.Unmarshal(env.Result, &v); err != nil {
				disp.errMsg = fmt.Sprintf("cluster: decode result: %v", err)
			} else {
				disp.result = v
			}
		}
	}
	disp.pending--
	fin := disp.pending <= 0
	if fin {
		disp.finished = true
	}
	d.mu.Unlock()
	if fin {
		close(disp.done)
	}
}

// monitor declares workers dead when their heartbeat goes stale — the slow
// path that catches a wedged-but-connected rank.
func (d *Dispatcher) monitor() {
	defer d.wg.Done()
	tick := time.NewTicker(d.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-tick.C:
			d.mu.Lock()
			var stale []int
			for r, w := range d.workers {
				if w.alive && time.Since(w.lastSeen) > d.cfg.HeartbeatTimeout {
					stale = append(stale, r)
				}
			}
			d.mu.Unlock()
			for _, r := range stale {
				d.handleDeath(r)
			}
		}
	}
}

// handleDeath marks a worker dead and recovers (or terminally fails) every
// job it was a member of.
func (d *Dispatcher) handleDeath(rank int) {
	d.mu.Lock()
	w := d.workers[rank]
	if w == nil || !w.alive || d.closed {
		d.mu.Unlock()
		return
	}
	w.alive = false
	w.inflight = 0
	var affected []*dispatch
	for _, disp := range d.jobs {
		if !disp.finished && memberOf(disp.members, rank) {
			affected = append(affected, disp)
		}
	}
	d.mu.Unlock()
	d.met.rankDeaths.Inc()
	d.met.workers.Add(-1)
	for _, disp := range affected {
		d.recover(disp, rank)
	}
}

// recover re-dispatches (single-rank, budget left) or terminally fails a
// job that lost member rank.
func (d *Dispatcher) recover(disp *dispatch, rank int) {
	d.mu.Lock()
	if disp.finished || !memberOf(disp.members, rank) {
		d.mu.Unlock()
		return
	}
	if d.cfg.Watch != nil {
		for r, tok := range disp.watchTokens {
			d.cfg.Watch.Exit(tok)
			delete(disp.watchTokens, r)
		}
	}
	single := len(disp.members) == 1
	if single && disp.retries < d.cfg.RetryBudget {
		disp.retries++
		d.mu.Unlock()
		d.met.retried.Inc()
		disp.job.Emit(serve.StreamRecord{Type: "span", Job: disp.job.ID,
			Phase: fmt.Sprintf("retry after rank %d death", rank)})
		if err := d.dispatchJob(disp); err != nil {
			d.finishDispatch(disp, err.Error())
			d.met.terminalFailures.Inc()
		}
		return
	}
	var msg string
	var survivors []int
	if single {
		msg = fmt.Sprintf("cluster: worker rank %d died; retry budget (%d) exhausted", rank, d.cfg.RetryBudget)
	} else {
		msg = fmt.Sprintf("cluster: worker rank %d died; multi-rank jobs are not retryable", rank)
		for _, r := range disp.members {
			if w := d.workers[r]; r != rank && w != nil && w.alive {
				survivors = append(survivors, r)
			}
		}
	}
	disp.finished = true
	disp.errMsg = msg
	d.mu.Unlock()
	for _, r := range survivors {
		send(d.comm, r, tagCtl, d.encFor(r), envelope{Kind: kindCancel, Job: disp.job.ID, Err: msg})
	}
	d.met.terminalFailures.Inc()
	close(disp.done)
}

// finishDispatch terminally fails a dispatch unless it already finished.
func (d *Dispatcher) finishDispatch(disp *dispatch, errMsg string) {
	d.mu.Lock()
	if disp.finished {
		d.mu.Unlock()
		return
	}
	disp.finished = true
	disp.errMsg = errMsg
	d.mu.Unlock()
	close(disp.done)
}

// Shutdown ends the dispatch plane after the front door has drained: when
// every worker is still alive it runs a final obs.Gather collective (the
// cluster-wide metrics merge, smart_cluster_* families included) before
// telling the workers to exit; with any rank dead the collective would hang,
// so it is skipped and the snapshot is nil.
func (d *Dispatcher) Shutdown() (*obs.ClusterSnapshot, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, nil
	}
	d.closed = true
	allAlive := true
	var alive []int
	for r := 1; r < d.comm.Size(); r++ {
		if w := d.workers[r]; w != nil && w.alive {
			alive = append(alive, r)
		} else {
			allAlive = false
		}
	}
	d.mu.Unlock()
	close(d.stop)

	var cs *obs.ClusterSnapshot
	var err error
	if allAlive {
		for _, r := range alive {
			send(d.comm, r, tagCtl, d.encFor(r), envelope{Kind: kindGather})
		}
		cs, err = obs.Gather(d.comm, d.cfg.Registry)
	}
	for _, r := range alive {
		send(d.comm, r, tagCtl, d.encFor(r), envelope{Kind: kindShutdown})
	}
	return cs, err
}
