// Package cluster turns smartd into a rank-world service. The coordinator
// (rank 0) owns the HTTP front door and a job dispatcher that implements
// serve.Executor: admitted jobs are serialized over internal/mpi
// point-to-point frames to worker ranks, which compile and execute them with
// the full two-level combination locally — spanning a per-job
// sub-communicator when the job asks for more than one rank — and stream
// early emissions, phase spans, per-step checkpoints and the final result
// back. Robustness is first-class: every uplink message doubles as a
// heartbeat, a dead rank is detected by its connection dropping or its
// heartbeat going stale, and a single-rank job lost to a dead worker is
// retried on a surviving rank from its last uploaded checkpoint — restoring
// byte-identical state, skipping the steps already analyzed — under a
// bounded retry budget before it is failed terminally through the normal
// NDJSON stream.
package cluster

import (
	"encoding/json"
	"fmt"

	"github.com/scipioneer/smart/internal/codec"
	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/serve"
)

// Control-plane tags, inside the user-tag space (< 1<<20) but far above
// anything application examples use. tagCtl carries coordinator→worker
// control messages; tagUp carries the worker→coordinator uplink. Per-pair
// per-tag ordering is non-overtaking, so a worker's ckpt upload can never
// arrive after the step record it precedes.
const (
	tagCtl = 1 << 18
	tagUp  = 1<<18 + 1
)

// Message kinds. Coordinator→worker: assign, cancel, gather, shutdown.
// Worker→coordinator: hello, beat, emit, ckpt, result.
const (
	kindAssign   = "assign"
	kindCancel   = "cancel"
	kindGather   = "gather"
	kindShutdown = "shutdown"

	kindHello  = "hello"
	kindBeat   = "beat"
	kindEmit   = "emit"
	kindCkpt   = "ckpt"
	kindResult = "result"
)

// envelope is the single wire message of the cluster control plane, JSON
// over mpi frames. Unused fields are omitted per kind.
type envelope struct {
	Kind string `json:"kind"`
	// Job is the service-wide job id every per-job message carries.
	Job string `json:"job,omitempty"`

	// Codecs is the sender's codec-support mask (codec.MaskOf bits). A
	// worker advertises its mask on hello; the coordinator echoes its own on
	// assign, so both directions converge on codec.Negotiate of the two.
	// Zero — an older build that never heard of codecs — negotiates to
	// codec.None, keeping mismatched peers on raw JSON.
	Codecs uint32 `json:"codecs,omitempty"`

	// assign: the normalized spec, the world ranks the job spans (the first
	// is the lead rank, which reports the result), the sub-communicator tag
	// band, optional checkpoint bytes to restore before running (with the
	// completed steps they cover), and the job's root trace context.
	Spec        serve.JobSpec `json:"spec,omitempty"`
	Members     []int         `json:"members,omitempty"`
	Band        int           `json:"band,omitempty"`
	Resume      []byte        `json:"resume,omitempty"`
	ResumeSteps int           `json:"resume_steps,omitempty"`
	TraceID     uint64        `json:"trace_id,omitempty"`
	SpanID      uint64        `json:"span_id,omitempty"`

	// cancel: the cause message and whether this is a drain cancel (the
	// worker then uploads a final checkpoint instead of discarding state).
	// Err doubles as the failure message on result envelopes.
	Err   string `json:"err,omitempty"`
	Drain bool   `json:"drain,omitempty"`

	// emit: one stream record forwarded into the job's NDJSON stream.
	Record *serve.StreamRecord `json:"record,omitempty"`

	// ckpt/result: checkpoint bytes with the steps they cover, and the
	// job's final output. Checkpointed marks a drain-cancelled job whose
	// state was persisted rather than discarded.
	Ckpt         []byte          `json:"ckpt,omitempty"`
	Steps        int             `json:"steps,omitempty"`
	Result       json.RawMessage `json:"result,omitempty"`
	Checkpointed bool            `json:"checkpointed,omitempty"`
}

// encodeEnvelope marshals one envelope into the control-plane wire form:
// a codec frame — [encoding byte | uvarint raw length | body] — so the
// receiver decodes by the leading byte alone, never by expectation. Sub-
// threshold or incompressible envelopes ship raw regardless of enc: control
// chatter (beats, acks) never pays codec overhead, and compression can only
// shrink the message.
func encodeEnvelope(enc codec.Encoding, env envelope) ([]byte, error) {
	buf, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode %s: %w", env.Kind, err)
	}
	if enc != codec.None && len(buf) >= codec.MinSize {
		frame, err := codec.AppendFrame(nil, enc, buf)
		if err != nil {
			return nil, fmt.Errorf("cluster: compress %s: %w", env.Kind, err)
		}
		if len(frame) < len(buf) {
			return frame, nil
		}
	}
	return codec.AppendFrame(nil, codec.None, buf)
}

// decodeEnvelope reverses encodeEnvelope. An unknown encoding byte — a
// peer from the future — is a clear error, not a JSON parse failure.
func decodeEnvelope(buf []byte) (envelope, error) {
	raw, err := codec.DecodeFrame(nil, buf)
	if err != nil {
		return envelope{}, err
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return envelope{}, err
	}
	return env, nil
}

// send marshals and delivers one envelope, compressing with enc when the
// body is big enough to benefit.
func send(c *mpi.Comm, dst, tag int, enc codec.Encoding, env envelope) error {
	buf, err := encodeEnvelope(enc, env)
	if err != nil {
		return err
	}
	return c.Send(dst, tag, buf)
}

// recvEnv blocks for the next envelope from src on tag.
func recvEnv(c *mpi.Comm, src, tag int) (envelope, error) {
	buf, err := c.Recv(src, tag)
	if err != nil {
		return envelope{}, err
	}
	env, err := decodeEnvelope(buf)
	if err != nil {
		return envelope{}, fmt.Errorf("cluster: decode frame from rank %d: %w", src, err)
	}
	return env, nil
}
