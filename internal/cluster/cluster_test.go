package cluster

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/obs"
	"github.com/scipioneer/smart/internal/serve"
)

// testCluster is an in-process rank world: rank 0 runs the dispatcher (and
// the serve front door), the other ranks run worker loops on goroutines.
// The transport is real TCP loopback, so killing a rank by closing its comm
// exercises the same death detection a crashed process would.
type testCluster struct {
	comms  []*mpi.Comm
	regs   []*obs.Registry
	disp   *Dispatcher
	server *serve.Server
}

func startCluster(t *testing.T, size int, scfg serve.Config) *testCluster {
	t.Helper()
	comms, err := mpi.NewTCPWorld(size)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{comms: comms, regs: make([]*obs.Registry, size)}
	for i := range tc.regs {
		tc.regs[i] = obs.NewRegistry()
	}
	if scfg.CheckpointDir == "" {
		scfg.CheckpointDir = t.TempDir()
	}
	// A generous staleness timeout: these tests kill ranks by closing their
	// endpoints, which the receivers detect instantly; the heartbeat monitor
	// only needs to not false-positive while busy schedulers starve the
	// beat goroutines of CPU.
	tc.disp, err = NewDispatcher(comms[0], Config{
		Registry:         tc.regs[0],
		CheckpointDir:    scfg.CheckpointDir,
		Heartbeat:        20 * time.Millisecond,
		HeartbeatTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < size; r++ {
		r := r
		go Worker(comms[r], WorkerConfig{Registry: tc.regs[r], Heartbeat: 20 * time.Millisecond, WorkDir: t.TempDir()})
	}
	scfg.Executor = tc.disp
	scfg.Registry = tc.regs[0]
	if scfg.Workers == 0 {
		scfg.Workers = 4
	}
	tc.server = serve.NewServer(scfg)
	t.Cleanup(func() {
		tc.server.Drain(100 * time.Millisecond)
		tc.disp.Shutdown()
		for _, c := range comms {
			c.Close()
		}
	})
	return tc
}

func waitTerminal(t *testing.T, j *serve.Job, timeout time.Duration) serve.JobView {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(timeout):
		t.Fatalf("job %s not terminal within %v (status %q)", j.ID(), timeout, j.View().Status)
	}
	return j.View()
}

// TestClusterExecutesJobsAndGathersMetrics covers the happy path: jobs
// submitted at the coordinator execute on worker ranks, results come back
// through the normal job views, the smart_cluster_* metrics export through
// the Prometheus endpoint, and the drain-time obs.Gather merges them across
// ranks.
func TestClusterExecutesJobsAndGathersMetrics(t *testing.T) {
	tc := startCluster(t, 3, serve.Config{Queue: 16})

	specs := []serve.JobSpec{
		{App: "histogram", Elems: 4096, Tenant: "alpha"},
		{App: "kmeans", Elems: 4096, Params: serve.Params{K: 4, Dims: 4, Iters: 3}, Tenant: "beta"},
	}
	for _, spec := range specs {
		j, err := tc.server.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if v := waitTerminal(t, j, 30*time.Second); v.Status != serve.StatusDone || v.Result == nil {
			t.Fatalf("job %s: status %q (err %q), result %v", v.ID, v.Status, v.Error, v.Result)
		}
	}
	if got := tc.regs[0].Counter("smart_cluster_jobs_dispatched_total").Value(); got < 2 {
		t.Errorf("dispatched = %d, want >= 2", got)
	}
	executed := int64(0)
	for _, reg := range tc.regs[1:] {
		executed += reg.Counter("smart_cluster_jobs_executed_total").Value()
	}
	if executed < 2 {
		t.Errorf("worker executions = %d, want >= 2", executed)
	}

	// The coordinator's Prometheus endpoint carries the cluster family,
	// per-tenant queue wait included.
	ts := httptest.NewServer(tc.server.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"smart_cluster_jobs_dispatched_total",
		"smart_cluster_workers",
		`smart_cluster_queue_wait_seconds_count{tenant="alpha"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// Drain, then gather: the cluster merge must contain coordinator and
	// worker counters side by side. Wait for at least one beat so the
	// heartbeat counter is visibly non-zero in the merge.
	beats := tc.regs[1].Counter("smart_cluster_heartbeats_total")
	for deadline := time.Now().Add(5 * time.Second); beats.Value() == 0 && time.Now().Before(deadline); {
		time.Sleep(5 * time.Millisecond)
	}
	tc.server.Drain(time.Second)
	cs, err := tc.disp.Shutdown()
	if err != nil {
		t.Fatalf("shutdown gather: %v", err)
	}
	if cs == nil {
		t.Fatal("shutdown returned no cluster snapshot with all workers alive")
	}
	if got := cs.Merged.Counters["smart_cluster_jobs_dispatched_total"]; got < 2 {
		t.Errorf("merged dispatched = %d, want >= 2", got)
	}
	if got := cs.Merged.Counters["smart_cluster_jobs_executed_total"]; got < 2 {
		t.Errorf("merged executed = %d, want >= 2", got)
	}
	if got := cs.Merged.Counters["smart_cluster_heartbeats_total"]; got == 0 {
		t.Error("merged heartbeats = 0, want > 0")
	}
}

// analyticsPayload strips the run-dependent "stats" diagnostics from a job
// result, leaving only the analytics output for byte comparison.
func analyticsPayload(t *testing.T, v any) []byte {
	t.Helper()
	m, ok := v.(map[string]any)
	if !ok {
		t.Fatalf("result is %T, want map", v)
	}
	clean := make(map[string]any, len(m))
	for k, val := range m {
		if k != "stats" {
			clean[k] = val
		}
	}
	buf, err := json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// deathSpec is a deterministic, checkpointable, many-step job: long enough
// to kill a worker mid-run, seeded so two runs produce identical output.
var deathSpec = serve.JobSpec{
	App: "kmeans", Steps: 200, Elems: 16384, Seed: 42,
	Params: serve.Params{K: 4, Dims: 4, Iters: 4},
}

// TestRankDeathRetriesFromCheckpointByteIdentical is the headline
// robustness test: a worker rank is killed mid-job (its TCP endpoint torn
// down, exactly what a crashed process looks like to the coordinator), and
// the job must still complete — retried on the surviving rank from the last
// uploaded checkpoint — with output bytes identical to an undisturbed run.
func TestRankDeathRetriesFromCheckpointByteIdentical(t *testing.T) {
	// Reference run: same spec, nobody dies.
	ref := startCluster(t, 3, serve.Config{Queue: 16})
	j, err := ref.server.Submit(deathSpec)
	if err != nil {
		t.Fatal(err)
	}
	refView := waitTerminal(t, j, 60*time.Second)
	if refView.Status != serve.StatusDone {
		t.Fatalf("reference run: status %q (%s)", refView.Status, refView.Error)
	}
	want := analyticsPayload(t, refView.Result)

	// Victim run: wait for at least two per-step checkpoint uploads from
	// rank 1 (the least-loaded tiebreak sends the first job there), then
	// kill it.
	tc := startCluster(t, 3, serve.Config{Queue: 16})
	j, err = tc.server.Submit(deathSpec)
	if err != nil {
		t.Fatal(err)
	}
	uploads := tc.regs[1].Counter("smart_cluster_checkpoint_uploads_total")
	deadline := time.Now().Add(30 * time.Second)
	for uploads.Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("rank 1 uploaded %d checkpoints, want >= 2 (job status %q)", uploads.Value(), j.View().Status)
		}
		time.Sleep(time.Millisecond)
	}
	tc.comms[1].Close()

	view := waitTerminal(t, j, 60*time.Second)
	if view.Status != serve.StatusDone {
		t.Fatalf("after rank death: status %q (%s)", view.Status, view.Error)
	}
	if got := analyticsPayload(t, view.Result); string(got) != string(want) {
		t.Errorf("retried result differs from reference:\n got %s\nwant %s", got, want)
	}
	if got := tc.regs[0].Counter("smart_cluster_rank_deaths_total").Value(); got != 1 {
		t.Errorf("rank deaths = %d, want 1", got)
	}
	if got := tc.regs[0].Counter("smart_cluster_jobs_retried_total").Value(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
}

// TestMultiRankJobSpansSubCommunicator runs one job across both worker
// ranks: the spec's element stream is partitioned and the global combination
// runs over the per-job sub-communicator, with the lead rank reporting one
// merged result.
func TestMultiRankJobSpansSubCommunicator(t *testing.T) {
	tc := startCluster(t, 3, serve.Config{Queue: 16})
	j, err := tc.server.Submit(serve.JobSpec{
		App: "histogram", Elems: 8192, Steps: 2, Ranks: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, j, 30*time.Second)
	if v.Status != serve.StatusDone {
		t.Fatalf("multi-rank job: status %q (%s)", v.Status, v.Error)
	}
	res, ok := v.Result.(map[string]any)
	if !ok || res["buckets"] == nil {
		t.Fatalf("multi-rank result missing buckets: %v", v.Result)
	}
	for r := 1; r <= 2; r++ {
		if got := tc.regs[r].Counter("smart_cluster_jobs_executed_total").Value(); got != 1 {
			t.Errorf("rank %d executed %d jobs, want 1", r, got)
		}
	}
}

// TestMultiRankJobFailsTerminallyOnMemberDeath pins the documented policy:
// a job spanning ranks is not retried when a member dies — its combination
// state is spread across the members — and fails through the normal stream.
func TestMultiRankJobFailsTerminallyOnMemberDeath(t *testing.T) {
	tc := startCluster(t, 3, serve.Config{Queue: 16})
	j, err := tc.server.Submit(serve.JobSpec{
		App: "kmeans", Elems: 16384, Steps: 500, Ranks: 2, Seed: 3,
		Params: serve.Params{K: 4, Dims: 4, Iters: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let it start executing, then kill a member.
	deadline := time.Now().Add(30 * time.Second)
	for j.View().Status != serve.StatusRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %q", j.View().Status)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	tc.comms[2].Close()

	v := waitTerminal(t, j, 60*time.Second)
	if v.Status != serve.StatusFailed {
		t.Fatalf("multi-rank death: status %q, want failed (%s)", v.Status, v.Error)
	}
	if !strings.Contains(v.Error, "multi-rank") {
		t.Errorf("failure message %q does not name the multi-rank policy", v.Error)
	}
	if got := tc.regs[0].Counter("smart_cluster_jobs_failed_terminal_total").Value(); got != 1 {
		t.Errorf("terminal failures = %d, want 1", got)
	}
}

// TestClusterDrainCheckpointsRemoteJob: a drain that interrupts a remote
// job pulls its final checkpoint bytes back to the coordinator, which
// persists them (plus the resume sidecar) exactly like a local drain.
func TestClusterDrainCheckpointsRemoteJob(t *testing.T) {
	ckdir := t.TempDir()
	tc := startCluster(t, 3, serve.Config{Queue: 16, CheckpointDir: ckdir})

	j, err := tc.server.Submit(deathSpec)
	if err != nil {
		t.Fatal(err)
	}
	uploads := tc.regs[1].Counter("smart_cluster_checkpoint_uploads_total")
	deadline := time.Now().Add(30 * time.Second)
	for uploads.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint upload before drain")
		}
		time.Sleep(time.Millisecond)
	}
	tc.server.Drain(10 * time.Millisecond)
	v := j.View()
	if v.Status != serve.StatusCheckpointed {
		t.Fatalf("drained remote job: status %q (%s)", v.Status, v.Error)
	}
	if v.Checkpoint == "" || !strings.HasPrefix(v.Checkpoint, ckdir) {
		t.Fatalf("checkpoint path %q not under %q", v.Checkpoint, ckdir)
	}

	// A fresh cluster (the restarted daemon) restores the job from the
	// coordinator-side artifacts and runs it to completion on a worker.
	tc2 := startCluster(t, 3, serve.Config{Queue: 16, CheckpointDir: ckdir})
	ids, err := tc2.server.RestoreCheckpoints()
	if err != nil || len(ids) != 1 {
		t.Fatalf("RestoreCheckpoints = %v, %v; want one job", ids, err)
	}
	restored, err := tc2.server.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	rv := waitTerminal(t, restored, 60*time.Second)
	if rv.Status != serve.StatusDone {
		t.Fatalf("restored job: status %q (%s)", rv.Status, rv.Error)
	}
}
