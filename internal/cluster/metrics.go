package cluster

import "github.com/scipioneer/smart/internal/obs"

// coordMetrics is the dispatcher's (rank 0) instrumentation. Together with
// serve's smart_cluster_queue_wait_seconds{tenant=...} these are the
// smart_cluster_* family: they export through the same Prometheus endpoint
// as the runtime metrics and ride obs.Gather at drain, so the cluster-wide
// merge shows dispatches next to the per-rank execution counters.
type coordMetrics struct {
	// dispatched counts assignments sent to workers (retries included).
	dispatched *obs.Counter
	// retried counts jobs re-dispatched after their worker died.
	retried *obs.Counter
	// rankDeaths counts workers declared dead (connection drop or stale
	// heartbeat); workers is the live-worker gauge it decrements.
	rankDeaths *obs.Counter
	workers    *obs.Gauge
	// terminalFailures counts jobs failed for good: retry budget exhausted
	// or a member of a multi-rank job died.
	terminalFailures *obs.Counter
}

func newCoordMetrics(r *obs.Registry) coordMetrics {
	return coordMetrics{
		dispatched:       r.Counter("smart_cluster_jobs_dispatched_total"),
		retried:          r.Counter("smart_cluster_jobs_retried_total"),
		rankDeaths:       r.Counter("smart_cluster_rank_deaths_total"),
		workers:          r.Gauge("smart_cluster_workers"),
		terminalFailures: r.Counter("smart_cluster_jobs_failed_terminal_total"),
	}
}

// workerMetrics is a worker rank's instrumentation.
type workerMetrics struct {
	// executed counts job runs finished on this rank (any outcome).
	executed *obs.Counter
	// ckptUploads counts per-step checkpoint uploads to the coordinator.
	ckptUploads *obs.Counter
	// heartbeats counts beats sent.
	heartbeats *obs.Counter
}

func newWorkerMetrics(r *obs.Registry) workerMetrics {
	return workerMetrics{
		executed:    r.Counter("smart_cluster_jobs_executed_total"),
		ckptUploads: r.Counter("smart_cluster_checkpoint_uploads_total"),
		heartbeats:  r.Counter("smart_cluster_heartbeats_total"),
	}
}
