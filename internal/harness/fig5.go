package harness

import (
	"fmt"
	"time"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/sim"
	"github.com/scipioneer/smart/internal/sparkbaseline"
)

// fig5Workload is one of the three Section 5.2 comparison applications.
type fig5Workload struct {
	figure string
	name   string
	// recLen is the record length in elements.
	recLen int
	// gen creates the input stream for one time-step.
	gen func(scale Scale) ([]float64, error)
	// smart runs the Smart implementation at the given thread count in
	// sequential-replay mode and returns the modeled computation time.
	smart func(data []float64, threads int) (time.Duration, error)
	// baseline runs the conventional-MapReduce implementation partitioned
	// for the given thread count and returns the modeled computation time.
	baseline func(data []float64, threads int) (time.Duration, error)
}

// modeledSmartTime composes the replay model for a single-process run: the
// slowest thread's split plus the serial local combination.
func modeledSmartTime(st *core.Stats) time.Duration {
	return maxDuration(st.SplitTimes) + st.LocalCombineTime
}

// modeledBaselineTime composes the engine's stage timings measured with one
// worker per partition: per stage, the slowest partition plus the serial
// shuffle and reduce tail.
func modeledBaselineTime(timings []sparkbaseline.StageTiming) time.Duration {
	var total time.Duration
	for _, st := range timings {
		total += st.MaxPart() + st.ShuffleTime + st.ReduceTime
	}
	return total
}

func emulatorStep(elems int, dims int, seed uint64) ([]float64, error) {
	e, err := sim.NewEmulator(sim.EmulatorConfig{StepElems: elems, Seed: seed, Dims: dims})
	if err != nil {
		return nil, err
	}
	if err := e.Step(); err != nil {
		return nil, err
	}
	return e.Data(), nil
}

func fig5Workloads(scale Scale) []fig5Workload {
	const (
		lrDims, lrIters = 15, 10
		kmK, kmDims     = 8, 64
		kmIters         = 10
		histBuckets     = 100
	)
	lrRecords := scale.pick(2_000, 40_000)
	kmPoints := scale.pick(500, 10_000)
	histElems := scale.pick(40_000, 800_000)

	return []fig5Workload{
		{
			figure: "Fig 5a",
			name:   "logistic regression (10 iters, 15 dims)",
			recLen: lrDims + 1,
			gen: func(Scale) ([]float64, error) {
				return emulatorStep(lrRecords*(lrDims+1), lrDims, 51)
			},
			smart: func(data []float64, threads int) (time.Duration, error) {
				app := analytics.NewLogReg(lrDims, 0.1)
				s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
					NumThreads: threads, ChunkSize: lrDims + 1, NumIters: lrIters, Sequential: true,
				})
				if err := s.Run(data, nil); err != nil {
					return 0, err
				}
				return modeledSmartTime(s.Stats()), nil
			},
			baseline: func(data []float64, threads int) (time.Duration, error) {
				e := sparkbaseline.NewEngine(1)
				if _, err := sparkbaseline.LogReg(e, data, lrDims, lrIters, threads, 0.1); err != nil {
					return 0, err
				}
				return modeledBaselineTime(e.Timings()), nil
			},
		},
		{
			figure: "Fig 5b",
			name:   "k-means (k=8, 10 iters, 64 dims)",
			recLen: kmDims,
			gen: func(Scale) ([]float64, error) {
				return emulatorStep(kmPoints*kmDims, 0, 52)
			},
			smart: func(data []float64, threads int) (time.Duration, error) {
				app := analytics.NewKMeans(kmK, kmDims)
				s := core.MustNewScheduler[float64, []float64](app, core.SchedArgs{
					NumThreads: threads, ChunkSize: kmDims, NumIters: kmIters, Sequential: true,
					Extra: kmeansInit(kmK, kmDims, -2, 2),
				})
				if err := s.Run(data, nil); err != nil {
					return 0, err
				}
				return modeledSmartTime(s.Stats()), nil
			},
			baseline: func(data []float64, threads int) (time.Duration, error) {
				e := sparkbaseline.NewEngine(1)
				init := make([][]float64, kmK)
				flat := kmeansInit(kmK, kmDims, -2, 2)
				for c := range init {
					init[c] = flat[c*kmDims : (c+1)*kmDims]
				}
				if _, err := sparkbaseline.KMeans(e, data, init, kmDims, kmIters, threads); err != nil {
					return 0, err
				}
				return modeledBaselineTime(e.Timings()), nil
			},
		},
		{
			figure: "Fig 5c",
			name:   fmt.Sprintf("histogram (%d buckets)", histBuckets),
			recLen: 1,
			gen: func(Scale) ([]float64, error) {
				return emulatorStep(histElems, 0, 53)
			},
			smart: func(data []float64, threads int) (time.Duration, error) {
				app := analytics.NewHistogram(-4, 4, histBuckets)
				s := core.MustNewScheduler[float64, int64](app, core.SchedArgs{
					NumThreads: threads, ChunkSize: 1, NumIters: 1, Sequential: true,
				})
				if err := s.Run(data, nil); err != nil {
					return 0, err
				}
				return modeledSmartTime(s.Stats()), nil
			},
			baseline: func(data []float64, threads int) (time.Duration, error) {
				e := sparkbaseline.NewEngine(1)
				if _, err := sparkbaseline.Histogram(e, data, -4, 4, histBuckets, threads); err != nil {
					return 0, err
				}
				return modeledBaselineTime(e.Timings()), nil
			},
		},
	}
}

// Fig5 reproduces Figures 5a–5c: Smart versus the conventional-MapReduce
// baseline on logistic regression, k-means, and histogram as the thread
// count grows from 1 to 8 on one node (emulator data source, Section 5.2).
func Fig5(scale Scale) ([]*Result, error) {
	var results []*Result
	for _, w := range fig5Workloads(scale) {
		res := &Result{
			Figure: w.figure,
			Title:  "Smart vs conventional MapReduce: " + w.name,
			XLabel: "threads",
			YLabel: "seconds (modeled from measured splits)",
		}
		data, err := w.gen(scale)
		if err != nil {
			return nil, err
		}
		var smart1, smart8, base8 time.Duration
		for _, threads := range []int{1, 2, 4, 8} {
			st, err := w.smart(data, threads)
			if err != nil {
				return nil, fmt.Errorf("%s smart t=%d: %w", w.figure, threads, err)
			}
			bt, err := w.baseline(data, threads)
			if err != nil {
				return nil, fmt.Errorf("%s baseline t=%d: %w", w.figure, threads, err)
			}
			res.AddPoint("Smart", float64(threads), seconds(st))
			res.AddPoint("conventional MR", float64(threads), seconds(bt))
			switch threads {
			case 1:
				smart1 = st
			case 8:
				smart8, base8 = st, bt
			}
		}
		if smart8 > 0 {
			res.Note("Smart speedup at 8 threads: %.2fx (paper: ~7.7-8.0x)",
				smart1.Seconds()/smart8.Seconds())
			res.Note("Smart vs conventional MR at 8 threads: %.1fx faster (paper: 21x-92x)",
				base8.Seconds()/smart8.Seconds())
		}
		results = append(results, res)
	}
	return results, nil
}

// Fig5Mem reproduces the Section 5.2 memory-efficiency comparison: the
// analytics memory footprint of Smart (live reduction objects) versus the
// conventional engine's materialized intermediate data, for each of the
// three workloads.
func Fig5Mem(scale Scale) (*Result, error) {
	res := &Result{
		Figure: "Fig 5mem",
		Title:  "Analytics memory footprint: Smart vs conventional MapReduce",
		XLabel: "workload (0=logreg 1=kmeans 2=histogram)",
		YLabel: "bytes",
	}
	for i, w := range fig5Workloads(scale) {
		data, err := w.gen(scale)
		if err != nil {
			return nil, err
		}
		// Smart: run and read the live-object peak. Reuse the smart runner
		// purely for its side effect on stats? The runners hide their
		// scheduler, so rebuild the cheapest one: histogram-style footprint
		// measurement via a dedicated run below.
		smartBytes, err := fig5SmartFootprint(i, data)
		if err != nil {
			return nil, err
		}
		e := sparkbaseline.NewEngine(1)
		switch i {
		case 0:
			_, err = sparkbaseline.LogReg(e, data, 15, 1, 4, 0.1)
		case 1:
			flat := kmeansInit(8, 64, -2, 2)
			init := make([][]float64, 8)
			for c := range init {
				init[c] = flat[c*64 : (c+1)*64]
			}
			_, err = sparkbaseline.KMeans(e, data, init, 64, 1, 4)
		case 2:
			_, err = sparkbaseline.Histogram(e, data, -4, 4, 100, 4)
		}
		if err != nil {
			return nil, err
		}
		baseBytes := e.Stats().PairBytes.Load()
		res.AddPoint("Smart", float64(i), float64(smartBytes))
		res.AddPoint("conventional MR", float64(i), float64(baseBytes))
		res.Note("workload %d: conventional/Smart footprint ratio %.0fx", i,
			float64(baseBytes)/float64(smartBytes))
	}
	return res, nil
}

// fig5SmartFootprint measures Smart's live reduction-object bytes for one
// workload over one iteration.
func fig5SmartFootprint(workload int, data []float64) (int64, error) {
	var stats *core.Stats
	var objBytes int
	switch workload {
	case 0:
		app := analytics.NewLogReg(15, 0.1)
		s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
			NumThreads: 4, ChunkSize: 16, NumIters: 1, Sequential: true,
		})
		if err := s.Run(data, nil); err != nil {
			return 0, err
		}
		stats, objBytes = s.Stats(), (&analytics.GradObj{Weights: make([]float64, 15)}).SizeBytes()
	case 1:
		app := analytics.NewKMeans(8, 64)
		s := core.MustNewScheduler[float64, []float64](app, core.SchedArgs{
			NumThreads: 4, ChunkSize: 64, NumIters: 1, Sequential: true,
			Extra: kmeansInit(8, 64, -2, 2),
		})
		if err := s.Run(data, nil); err != nil {
			return 0, err
		}
		stats, objBytes = s.Stats(), (&analytics.ClusterObj{Centroid: make([]float64, 64)}).SizeBytes()
	default:
		app := analytics.NewHistogram(-4, 4, 100)
		s := core.MustNewScheduler[float64, int64](app, core.SchedArgs{
			NumThreads: 4, ChunkSize: 1, NumIters: 1, Sequential: true,
		})
		if err := s.Run(data, nil); err != nil {
			return 0, err
		}
		stats, objBytes = s.Stats(), (&analytics.CountObj{}).SizeBytes()
	}
	return stats.MaxLiveRedObjs * int64(objBytes), nil
}
