package harness

import (
	"errors"
	"time"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/sim"
)

// fig11Run measures one window-analytics run against a virtual memory node
// that already holds the simulation's working set. The charged time is the
// measured analytics time inflated by the peak memory pressure; an OOM from
// the reduction maps is the paper's "crash".
func fig11Run(data []float64, simBytes int64, capacity int64,
	mk func(mem *memmodel.Node) (func() error, error)) (time.Duration, bool, error) {

	mem := memmodel.NewNode(capacity)
	// A gentler ramp than the default: combined with the real cost of
	// maintaining per-element reduction maps, the default would overshoot
	// the paper's 5.6x by a wide margin.
	mem.SetPressureModel(memmodel.DefaultHighWater, 2.6)
	simAlloc, err := mem.Alloc("simulation", simBytes)
	if err != nil {
		return 0, false, err
	}
	defer simAlloc.Free()

	run, err := mk(mem)
	if err != nil {
		return 0, false, err
	}
	start := time.Now()
	err = run()
	measured := time.Since(start)
	var oom *memmodel.OOMError
	if errors.As(err, &oom) {
		return 0, true, nil
	}
	if err != nil {
		return 0, false, err
	}
	return time.Duration(float64(measured) * mem.PeakSlowdown()), false, nil
}

// Fig11a reproduces Figure 11a: moving average (window 7) on Heat3D with
// and without the early-emission trigger, sweeping the time-step size.
// Without the trigger the reduction maps hold one object per element and
// the analytics thrashes, then crashes; with it they hold a window's worth.
func Fig11a(scale Scale) (*Result, error) {
	res := &Result{
		Figure: "Fig 11a",
		Title:  "Early emission on/off: moving average (window 7) on Heat3D",
		XLabel: "time-step size (MB)",
		YLabel: "pressure-adjusted seconds",
	}
	nx := scale.pick(12, 32)
	ny := scale.pick(12, 32)
	nzs := []int{32, 48, 64, 80, 96}
	if scale == Small {
		nzs = []int{8, 16, 24}
	}
	const win = 7

	// Capacity: the simulation plus per-element reduction objects of the
	// second-largest size just fit under thrash; the largest size without
	// the trigger goes over.
	probeTop, err := sim.NewHeat3D(sim.Heat3DConfig{NX: nx, NY: ny, NZ: nzs[len(nzs)-1], Seed: 51})
	if err != nil {
		return nil, err
	}
	objBytes := int64((&analytics.SumCountObj{}).SizeBytes())
	capacity := probeTop.MemoryBytes() + objBytes*int64(len(probeTop.Data()))*8/10

	for _, nz := range nzs {
		heat, err := sim.NewHeat3D(sim.Heat3DConfig{NX: nx, NY: ny, NZ: nz, Seed: 51})
		if err != nil {
			return nil, err
		}
		if err := heat.Step(); err != nil {
			return nil, err
		}
		data := heat.Data()
		for _, trigger := range []bool{true, false} {
			trigger := trigger
			total, crashed, err := fig11Run(data, heat.MemoryBytes(), capacity,
				func(mem *memmodel.Node) (func() error, error) {
					app := analytics.NewMovingAverage(win, len(data), 0, trigger)
					s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
						NumThreads: 1, ChunkSize: 1, NumIters: 1, Mem: mem,
					})
					out := make([]float64, len(data))
					return func() error { return s.Run2(data, out) }, nil
				})
			if err != nil {
				return nil, err
			}
			name := "with trigger (Smart)"
			if !trigger {
				name = "no trigger"
			}
			x := float64(heat.StepBytes()) / (1 << 20)
			if crashed {
				res.AddCrash(name, x)
			} else {
				res.AddPoint(name, x, seconds(total))
			}
		}
	}
	gain := seriesGain(res, "no trigger", "with trigger (Smart)")
	res.Note("max speedup from early emission: %.1fx (paper: up to 5.6x, then the no-trigger variant crashes)", 1+gain)
	return res, nil
}

// Fig11b reproduces Figure 11b: moving median (window 11) on Lulesh,
// sweeping the cube edge. The median's holistic Θ(W) reduction objects make
// the no-trigger variant's footprint W-fold larger, so it crashes earlier.
func Fig11b(scale Scale) (*Result, error) {
	res := &Result{
		Figure: "Fig 11b",
		Title:  "Early emission on/off: moving median (window 11) on Lulesh",
		XLabel: "cube edge size",
		YLabel: "pressure-adjusted seconds",
	}
	edges := []int{24, 32, 40, 48, 56}
	if scale == Small {
		edges = []int{8, 12, 16}
	}
	const win = 11

	probeTop, err := sim.NewLulesh(sim.LuleshConfig{Edge: edges[len(edges)-1], Seed: 52})
	if err != nil {
		return nil, err
	}
	// A ValuesObj holding a full window.
	objBytes := int64((&analytics.ValuesObj{Values: make([]float64, win)}).SizeBytes())
	capacity := probeTop.MemoryBytes() + objBytes*int64(len(probeTop.Data()))*8/10

	for _, edge := range edges {
		lul, err := sim.NewLulesh(sim.LuleshConfig{Edge: edge, Seed: 52})
		if err != nil {
			return nil, err
		}
		if err := lul.Step(); err != nil {
			return nil, err
		}
		data := lul.Data()
		for _, trigger := range []bool{true, false} {
			trigger := trigger
			total, crashed, err := fig11Run(data, lul.MemoryBytes(), capacity,
				func(mem *memmodel.Node) (func() error, error) {
					app := analytics.NewMovingMedian(win, len(data), 0, trigger)
					s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
						NumThreads: 1, ChunkSize: 1, NumIters: 1, Mem: mem,
					})
					out := make([]float64, len(data))
					return func() error { return s.Run2(data, out) }, nil
				})
			if err != nil {
				return nil, err
			}
			name := "with trigger (Smart)"
			if !trigger {
				name = "no trigger"
			}
			if crashed {
				res.AddCrash(name, float64(edge))
			} else {
				res.AddPoint(name, float64(edge), seconds(total))
			}
		}
	}
	gain := seriesGain(res, "no trigger", "with trigger (Smart)")
	res.Note("max speedup from early emission: %.1fx (paper: up to 5.2x, then the no-trigger variant crashes)", 1+gain)
	return res, nil
}
