package harness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	r := &Result{Figure: "Fig 9b", XLabel: "edge"}
	r.AddPoint("zero-copy", 40, 0.01)
	r.AddPoint("copy", 40, 0.012)
	r.AddPoint("zero-copy", 80, 0.02)
	r.AddCrash("copy", 80)

	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d, want 3", len(rows))
	}
	if rows[0][0] != "edge" || rows[0][1] != "zero-copy" || rows[0][2] != "copy" {
		t.Fatalf("header %v", rows[0])
	}
	if rows[1][0] != "40" || rows[1][2] != "0.012" {
		t.Fatalf("row 1: %v", rows[1])
	}
	if rows[2][2] != "CRASH" {
		t.Fatalf("crash cell: %v", rows[2])
	}
	if name := r.CSVName(); name != "fig9b.csv" {
		t.Fatalf("csv name %q", name)
	}
}

func TestWriteCSVEmptyCells(t *testing.T) {
	r := &Result{Figure: "Fig X", XLabel: "x"}
	r.AddPoint("a", 1, 2)
	r.AddPoint("b", 3, 4) // no x=1 point for b, no x=3 for a
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1,2,\n") || !strings.Contains(out, "3,,4\n") {
		t.Fatalf("sparse cells wrong:\n%s", out)
	}
}
