package harness

import (
	"fmt"
	"time"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/insitu"
	"github.com/scipioneer/smart/internal/perfmodel"
	"github.com/scipioneer/smart/internal/sim"
)

// Figure 10's modeled many-core node (Xeon Phi SE10P in the paper): 60
// usable cores at low clock, with neither the simulation nor the
// memory-bound analytics able to scale much past ~32 of them — the premise
// that motivates space sharing (Sections 3.2 and 5.6).
var (
	fig10SimAmdahl = perfmodel.Amdahl{SerialFraction: 0.005, SaturationCores: 32}
	fig10AnaAmdahl = perfmodel.Amdahl{SerialFraction: 0.002, SaturationCores: 30}
)

const (
	fig10Nodes = 8
	fig10Cores = 60
	// fig10Interference inflates concurrent co-located tasks' compute: the
	// two space-sharing tasks contend for shared cache and memory
	// bandwidth.
	fig10Interference = 1.02
)

// fig10App is one Figure 10 workload.
type fig10App struct {
	figure string
	name   string
	iters  int
	run    func(data []float64) (appMeasure, error)
}

// Fig10 reproduces Figures 10a–10c: time sharing versus space sharing
// core-split schemes (50_10 … 10_50) plus the simulation-only baseline, for
// histogram, k-means, and moving median on Lulesh output over 8 many-core
// nodes. Each task's serial work is measured once; the model scales it onto
// core subsets with saturation, overlaps the two tasks under space sharing,
// charges the serialized-MPI communication twice (it cannot overlap the
// other task's communication), and applies a small co-run interference
// factor. The paper's qualitative outcome — histogram prefers time sharing,
// k-means gains modestly, the compute-heavy moving median gains most with a
// balanced split — follows from those mechanisms.
func Fig10(scale Scale) ([]*Result, error) {
	edge := scale.pick(16, 80)
	sweeps := scale.pick(8, 150)

	lul, err := sim.NewLulesh(sim.LuleshConfig{Edge: edge, SweepsPerStep: sweeps, Seed: 41})
	if err != nil {
		return nil, err
	}
	simSeq, err := bestOf(2, func() (time.Duration, error) {
		start := time.Now()
		err := lul.Step()
		return time.Since(start), err
	})
	if err != nil {
		return nil, err
	}
	data := lul.Data()
	lo, hi := dataRange(data)
	comm := perfmodel.DefaultComm

	apps := []fig10App{
		{
			figure: "Fig 10a", name: "histogram (1200 buckets)", iters: 1,
			run: func(data []float64) (appMeasure, error) {
				app := analytics.NewHistogram(lo, hi, 1200)
				s := core.MustNewScheduler[float64, int64](app, core.SchedArgs{
					NumThreads: 1, ChunkSize: 1, NumIters: 1, Sequential: true,
				})
				if err := s.Run(data, nil); err != nil {
					return appMeasure{}, err
				}
				return appMeasure{s.Stats(), s.EncodeCombinationMap}, nil
			},
		},
		{
			figure: "Fig 10b", name: "k-means (k=8, 10 iters, 4 dims)", iters: 10,
			run: func(data []float64) (appMeasure, error) {
				app := analytics.NewKMeans(8, 4)
				s := core.MustNewScheduler[float64, []float64](app, core.SchedArgs{
					NumThreads: 1, ChunkSize: 4, NumIters: 10, Sequential: true,
					Extra: kmeansInit(8, 4, lo, hi),
				})
				if err := s.Run(data[:len(data)/4*4], nil); err != nil {
					return appMeasure{}, err
				}
				return appMeasure{s.Stats(), s.EncodeCombinationMap}, nil
			},
		},
		{
			figure: "Fig 10c", name: "moving median (window 25)", iters: 1,
			run: func(data []float64) (appMeasure, error) {
				app := analytics.NewMovingMedian(25, len(data), 0, true)
				s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
					NumThreads: 1, ChunkSize: 1, NumIters: 1, Sequential: true,
				})
				if err := s.Run2(data, make([]float64, len(data))); err != nil {
					return appMeasure{}, err
				}
				return appMeasure{s.Stats(), s.EncodeCombinationMap}, nil
			},
		},
	}

	simTime := func(cores int) time.Duration { return fig10SimAmdahl.Time(simSeq, cores) }
	simOnly := simTime(fig10Cores)

	var results []*Result
	for _, app := range apps {
		res := &Result{
			Figure: app.figure,
			Title:  "Time sharing vs space sharing: " + app.name,
			XLabel: "scheme (0=sim-only, 1=time sharing, 2..6 = 50_10..10_50)",
			YLabel: "seconds per time-step (modeled node time)",
		}
		res.AddPoint("sim-only", 0, seconds(simOnly))

		// One sequential measurement of the whole analytics step.
		var anaSeq, serial time.Duration
		var bytes int64
		if _, err := bestOf(2, func() (time.Duration, error) {
			m, err := app.run(data)
			if err != nil {
				return 0, err
			}
			compute, ser, b, err := m.modeled(app.iters)
			if err != nil {
				return 0, err
			}
			anaSeq, serial, bytes = compute, ser, b
			return compute + ser, nil
		}); err != nil {
			return nil, err
		}
		anaTime := func(cores int) time.Duration {
			return fig10AnaAmdahl.Time(anaSeq, cores) + serial
		}
		anaComm := time.Duration(app.iters) * comm.Collective(fig10Nodes, bytes)

		// Time sharing: the tasks alternate, each on all cores.
		ts := simTime(fig10Cores) + anaTime(fig10Cores) + anaComm
		res.AddPoint("time sharing", 1, seconds(ts))

		// Space sharing n_m: compute overlaps (with interference), but the
		// serialized MPI endpoint keeps communication from overlapping the
		// other task, doubling its effective cost.
		best := ts
		bestName := "time sharing"
		schemes := []struct{ simCores, anaCores int }{
			{50, 10}, {40, 20}, {30, 30}, {20, 40}, {10, 50},
		}
		for i, sch := range schemes {
			overlap := max(simTime(sch.simCores), anaTime(sch.anaCores))
			ss := time.Duration(float64(overlap)*fig10Interference) + 2*anaComm
			name := fmt.Sprintf("%d_%d", sch.simCores, sch.anaCores)
			res.AddPoint(name, float64(2+i), seconds(ss))
			if ss < best {
				best = ss
				bestName = name
			}
		}
		res.Note("best scheme: %s; improvement over time sharing: %+.1f%%", bestName,
			100*(ts.Seconds()-best.Seconds())/ts.Seconds())
		res.Note("overhead of best scheme over sim-only: %.1f%%",
			100*(best.Seconds()-simOnly.Seconds())/simOnly.Seconds())
		results = append(results, res)
	}

	if err := fig10Backpressure(scale, results[len(results)-1]); err != nil {
		return nil, err
	}
	return results, nil
}

// fig10Backpressure drives one small but real space-sharing run through the
// scheduler's circular buffer. The schemes above are modeled and never touch
// the buffer; this probe makes the Section 3.2 backpressure mechanism
// observable — buffer occupancy, producer blocked-time, and per-phase spans
// all land in the runtime metrics (smart_ringbuf_*, smart_span_*) that
// `smartbench -metrics` snapshots — and appends the measured numbers to the
// figure as a note.
func fig10Backpressure(scale Scale, res *Result) error {
	elems := scale.pick(20_000, 200_000)
	steps := scale.pick(4, 8)
	const cells = 2

	em, err := sim.NewEmulator(sim.EmulatorConfig{StepElems: elems, Mean: 10, StdDev: 4, Seed: 42})
	if err != nil {
		return err
	}
	// A cheap producer (emulator) against the compute-heavy moving median
	// forces the producer to wait on the full buffer.
	app := analytics.NewMovingMedian(25, elems, 0, true)
	s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: 2, ChunkSize: 1, NumIters: 1, BufferCells: cells,
	})
	out := make([]float64, elems)
	consume := func() error {
		s.ResetCombinationMap()
		return s.RunShared2(out)
	}
	if _, err := insitu.SpaceSharing(em, s.Feed, consume, s.CloseFeed,
		insitu.SpaceSharingConfig{Steps: steps}); err != nil {
		return err
	}
	_, _, producerWaits := s.BufferStats()
	producerBlocked, consumerBlocked := s.BufferBlockedTime()
	res.Note("measured backpressure probe: %d steps through a %d-cell buffer; producer blocked %v across %d waits, consumer blocked %v",
		steps, cells, producerBlocked.Round(time.Microsecond), producerWaits,
		consumerBlocked.Round(time.Microsecond))
	return nil
}
