package harness

import (
	"time"

	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/perfmodel"
	"github.com/scipioneer/smart/internal/sim"
)

// fig7SimAmdahl models the simulation's thread scalability on the 8-core
// multicore nodes: a small memory-bandwidth-bound serial share.
var fig7SimAmdahl = perfmodel.Amdahl{SerialFraction: 0.08}

// Fig7 reproduces Figure 7: total in-situ processing time of all nine
// applications on Heat3D as the node count grows from 4 to 32 with 8
// threads per node (strong scaling of a fixed global problem). Nodes are
// homogeneous, so one representative node per configuration is executed and
// timed, and the replay model composes the cluster step. The per-node
// memory-pressure relief as the grid is split finer reproduces the paper's
// superlinear region.
func Fig7(scale Scale) (*Result, error) {
	res := &Result{
		Figure: "Fig 7",
		Title:  "In-situ processing times vs nodes on Heat3D (8 threads/node)",
		XLabel: "nodes",
		YLabel: "seconds per time-step (modeled cluster time)",
	}
	const threads = 8
	nx := scale.pick(12, 64)
	ny := scale.pick(12, 64)
	nzGlobal := scale.pick(64, 256)
	nodeCounts := []int{4, 8, 16, 32}
	comm := perfmodel.DefaultComm

	// The virtual node capacity is set just above the 4-node working set,
	// so small clusters run under memory pressure and the pressure lifts as
	// nodes are added — the source of the paper's superlinear speedups.
	probe, err := sim.NewHeat3D(sim.Heat3DConfig{NX: nx, NY: ny, NZ: nzGlobal / nodeCounts[0], Seed: 21})
	if err != nil {
		return nil, err
	}
	capacity := int64(float64(probe.MemoryBytes()) * 1.04)

	// modeled step time per application per node count
	times := make(map[string]map[int]time.Duration)

	for _, nodes := range nodeCounts {
		nzLocal := nzGlobal / nodes
		heat, err := sim.NewHeat3D(sim.Heat3DConfig{NX: nx, NY: ny, NZ: nzLocal, Seed: 21})
		if err != nil {
			return nil, err
		}
		// Measure one simulation step sequentially; model it on 8 threads.
		simSeq, err := bestOf(2, func() (time.Duration, error) {
			start := time.Now()
			err := heat.Step()
			return time.Since(start), err
		})
		if err != nil {
			return nil, err
		}
		simTime := fig7SimAmdahl.Time(simSeq, threads)

		mem := memmodel.NewNode(capacity)
		mem.SetPressureModel(memmodel.DefaultHighWater, 1.6)
		alloc, err := mem.Alloc("simulation", heat.MemoryBytes())
		if err != nil {
			return nil, err
		}
		slow := mem.SlowdownFactor()
		alloc.Free()

		data := heat.Data()
		for _, app := range nineApps(len(data), 0, 115) {
			app := app
			total, err := bestOf(3, func() (time.Duration, error) {
				m, err := app.run(data, threads)
				if err != nil {
					return 0, err
				}
				compute, serial, bytes, err := m.modeled(app.iters)
				if err != nil {
					return 0, err
				}
				node := perfmodel.NodeStep{
					ThreadTimes: []time.Duration{simTime + compute},
					SerialTime:  serial,
					CommBytes:   bytes,
					MemSlowdown: slow,
				}
				steps := make([]perfmodel.NodeStep, nodes)
				for j := range steps {
					steps[j] = node
				}
				t := perfmodel.StepTime(steps, comm)
				if app.iters > 1 {
					t += time.Duration(app.iters-1) * comm.Collective(nodes, bytes)
				}
				return t, nil
			})
			if err != nil {
				return nil, err
			}
			if times[app.name] == nil {
				times[app.name] = make(map[int]time.Duration)
			}
			times[app.name][nodes] = total
			res.AddPoint(app.name, float64(nodes), seconds(total))
		}
	}

	// Average strong-scaling parallel efficiency across all applications
	// from the 4-node baseline to 32 nodes.
	base, top := nodeCounts[0], nodeCounts[len(nodeCounts)-1]
	var sum float64
	for _, ts := range times {
		sum += perfmodel.Efficiency(base, ts[base], top, ts[top])
	}
	res.Note("average parallel efficiency %d->%d nodes: %.0f%% (paper: 93%% average)",
		base, top, 100*sum/float64(len(times)))
	return res, nil
}
