package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/lowlevel"
	"github.com/scipioneer/smart/internal/perfmodel"
)

// fig6Threads is the per-node thread count of the Section 5.3 experiments.
const fig6Threads = 8

// Fig6 reproduces Figure 6: Smart versus the hand-coded low-level
// (MPI/OpenMP-style) implementations of k-means and logistic regression,
// processing a fixed total dataset on 8–64 modeled nodes. Per node count,
// one representative node's work is executed and timed (nodes are
// homogeneous), Smart's serialization cost is measured directly, and the
// cluster step is composed by the replay model.
func Fig6(scale Scale) ([]*Result, error) {
	const (
		kmK, kmDims, kmIters = 8, 64, 10
		lrDims, lrIters      = 15, 10
	)
	// Per-node work must be large enough that the constant serialization
	// cost stays a single-digit share, as in the paper's 1 TB runs.
	totalKMPoints := scale.pick(8_000, 1_280_000)
	totalLRRecords := scale.pick(4_000, 2_560_000)
	nodeCounts := []int{8, 16, 32, 64}
	comm := perfmodel.DefaultComm

	kmRes := &Result{
		Figure: "Fig 6a",
		Title:  "Smart vs hand-coded low-level: k-means",
		XLabel: "nodes",
		YLabel: "seconds per run (modeled cluster time)",
	}
	lrRes := &Result{
		Figure: "Fig 6b",
		Title:  "Smart vs hand-coded low-level: logistic regression",
		XLabel: "nodes",
		YLabel: "seconds per run (modeled cluster time)",
	}

	var kmMaxOverhead, lrMaxOverhead float64
	for _, nodes := range nodeCounts {
		// --- k-means ---
		kmData, err := emulatorStep(totalKMPoints/nodes*kmDims, 0, 61)
		if err != nil {
			return nil, err
		}
		init := kmeansInit(kmK, kmDims, -2, 2)

		smartKM, err := bestOf(5, func() (time.Duration, error) {
			return smartReplayNode(func() (*core.Stats, func() ([]byte, error), error) {
				app := analytics.NewKMeans(kmK, kmDims)
				s := core.MustNewScheduler[float64, []float64](app, core.SchedArgs{
					NumThreads: fig6Threads, ChunkSize: kmDims, NumIters: kmIters,
					Sequential: true, Extra: init,
				})
				if err := s.Run(kmData, nil); err != nil {
					return nil, nil, err
				}
				return s.Stats(), s.EncodeCombinationMap, nil
			}, kmIters, nodes, comm)
		})
		if err != nil {
			return nil, err
		}

		llSeq, err := bestOf(5, func() (time.Duration, error) {
			start := time.Now()
			if _, err := lowlevel.KMeans(nil, kmData, init, kmK, kmDims, kmIters, 1); err != nil {
				return 0, err
			}
			return time.Since(start), nil
		})
		if err != nil {
			return nil, err
		}
		llKM := time.Duration(float64(llSeq)/fig6Threads) +
			time.Duration(kmIters)*comm.Collective(nodes, int64(kmK*(kmDims+1)*8))

		kmRes.AddPoint("Smart", float64(nodes), seconds(smartKM))
		kmRes.AddPoint("hand-coded", float64(nodes), seconds(llKM))
		if ov := smartKM.Seconds()/llKM.Seconds() - 1; ov > kmMaxOverhead {
			kmMaxOverhead = ov
		}

		// --- logistic regression ---
		lrData, err := emulatorStep(totalLRRecords/nodes*(lrDims+1), lrDims, 62)
		if err != nil {
			return nil, err
		}
		smartLR, err := bestOf(5, func() (time.Duration, error) {
			return smartReplayNode(func() (*core.Stats, func() ([]byte, error), error) {
				app := analytics.NewLogReg(lrDims, 0.1)
				s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
					NumThreads: fig6Threads, ChunkSize: lrDims + 1, NumIters: lrIters, Sequential: true,
				})
				if err := s.Run(lrData, nil); err != nil {
					return nil, nil, err
				}
				return s.Stats(), s.EncodeCombinationMap, nil
			}, lrIters, nodes, comm)
		})
		if err != nil {
			return nil, err
		}

		llSeq, err = bestOf(5, func() (time.Duration, error) {
			start := time.Now()
			if _, err := lowlevel.LogReg(nil, lrData, lrDims, lrIters, 1, 0.1); err != nil {
				return 0, err
			}
			return time.Since(start), nil
		})
		if err != nil {
			return nil, err
		}
		llLR := time.Duration(float64(llSeq)/fig6Threads) +
			time.Duration(lrIters)*comm.Collective(nodes, int64((lrDims+1)*8))

		lrRes.AddPoint("Smart", float64(nodes), seconds(smartLR))
		lrRes.AddPoint("hand-coded", float64(nodes), seconds(llLR))
		if ov := smartLR.Seconds()/llLR.Seconds() - 1; ov > lrMaxOverhead {
			lrMaxOverhead = ov
		}
	}
	kmRes.Note("max Smart overhead over hand-coded: %.1f%% (paper: up to 9%%)", 100*kmMaxOverhead)
	lrRes.Note("max Smart overhead over hand-coded: %.1f%% (paper: unnoticeable)", 100*lrMaxOverhead)
	return []*Result{kmRes, lrRes}, nil
}

// smartReplayNode measures one representative node's Smart run and composes
// the modeled cluster time for `nodes` homogeneous nodes: per-thread splits
// from the sequential replay, local combination plus measured
// encode/decode serialization per iteration as the serial tail, and one
// collective per iteration.
func smartReplayNode(run func() (*core.Stats, func() ([]byte, error), error), iters, nodes int,
	comm perfmodel.CommModel) (time.Duration, error) {

	stats, encode, err := run()
	if err != nil {
		return 0, err
	}
	// Measure serialization: global combination encodes (and decodes) the
	// map once per iteration; measured here outside a live communicator.
	var encoded []byte
	serStart := time.Now()
	const serRounds = 16
	for i := 0; i < serRounds; i++ {
		if encoded, err = encode(); err != nil {
			return 0, err
		}
	}
	serialize := time.Since(serStart) / serRounds

	node := perfmodel.NodeStep{
		ThreadTimes: stats.SplitTimes,
		SerialTime:  stats.LocalCombineTime + time.Duration(iters)*2*serialize,
		CommBytes:   int64(len(encoded)),
	}
	steps := make([]perfmodel.NodeStep, nodes)
	for i := range steps {
		steps[i] = node
	}
	// StepTime charges one collective; iterations each pay one.
	t := perfmodel.StepTime(steps, comm)
	if iters > 1 {
		t += time.Duration(iters-1) * comm.Collective(nodes, node.CommBytes)
	}
	return t, nil
}

// Fig6LoC reproduces the Section 5.3 programmability comparison by counting
// source lines: the hand-coded low-level implementations versus the Smart
// application code for the same two analytics. The paper reports 55%
// (k-means) and 69% (logistic regression) of low-level parallel code
// eliminated or converted to sequential code.
func Fig6LoC() (*Result, error) {
	res := &Result{
		Figure: "Fig 6loc",
		Title:  "Lines of code: hand-coded low-level vs Smart application code",
		XLabel: "implementation (0=low-level both apps, 1=Smart kmeans, 2=Smart logreg)",
		YLabel: "non-blank, non-comment lines",
	}
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	low, err := countLoC(filepath.Join(root, "internal", "lowlevel", "lowlevel.go"))
	if err != nil {
		return nil, err
	}
	km, err := countLoC(filepath.Join(root, "internal", "analytics", "kmeans.go"))
	if err != nil {
		return nil, err
	}
	lr, err := countLoC(filepath.Join(root, "internal", "analytics", "logreg.go"))
	if err != nil {
		return nil, err
	}
	res.AddPoint("lines", 0, float64(low))
	res.AddPoint("lines", 1, float64(km))
	res.AddPoint("lines", 2, float64(lr))
	res.Note("Smart app code is sequential; the low-level file carries the "+
		"thread pool, flat-buffer packing, and Allreduce plumbing (%d lines) that "+
		"Smart eliminates", low)
	return res, nil
}

// moduleRoot locates the repository root from this source file's path.
func moduleRoot() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("harness: cannot locate source")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return "", fmt.Errorf("harness: source tree not available: %w", err)
	}
	return root, nil
}

// countLoC counts non-blank, non-comment lines of a Go file.
func countLoC(path string) (int, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, line := range strings.Split(string(buf), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		count++
	}
	return count, nil
}
