package harness

import (
	"time"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/insitu"
	"github.com/scipioneer/smart/internal/sim"
)

// fig1DiskBytesPerSec is the modeled per-node share of parallel filesystem
// bandwidth for the offline pipeline — deliberately modest, as on a busy
// HPC machine, so the store-first-analyze-after I/O cost is visible at
// laptop scale (see EXPERIMENTS.md for the calibration).
const fig1DiskBytesPerSec = 56 << 20

// Fig1 reproduces the Figure 1 case study: total processing time of in-situ
// versus offline k-means clustering on Heat3D output, varying the k-means
// iteration count to vary the amount of analytics computation. The offline
// pipeline pays the write-out and read-back of every time-step.
func Fig1(scale Scale) (*Result, error) {
	res := &Result{
		Figure: "Fig 1",
		Title:  "In-situ vs offline k-means on Heat3D",
		XLabel: "k-means iterations",
		YLabel: "seconds",
	}
	steps := scale.pick(3, 10)
	nx := scale.pick(16, 48)
	ny := scale.pick(16, 48)
	nz := scale.pick(16, 32)
	const k, dims = 8, 4
	init := kmeansInit(k, dims, 0, 115)

	var bestSpeedup float64
	for _, iters := range []int{1, 3, 5, 7, 9} {
		runAnalytics := func() (insitu.AnalyzeFn, func()) {
			app := analytics.NewKMeans(k, dims)
			s := core.MustNewScheduler[float64, []float64](app, core.SchedArgs{
				NumThreads: 1, ChunkSize: dims, NumIters: iters, Extra: init,
			})
			return func(data []float64) error { return s.Run(data, nil) }, func() {}
		}

		// In-situ (time sharing, zero copy).
		heat, err := sim.NewHeat3D(sim.Heat3DConfig{NX: nx, NY: ny, NZ: nz, Seed: 11})
		if err != nil {
			return nil, err
		}
		analyze, done := runAnalytics()
		timings, err := insitu.TimeSharing(heat, analyze, insitu.TimeSharingConfig{Steps: steps})
		if err != nil {
			return nil, err
		}
		done()
		var insituTotal time.Duration
		for _, t := range timings {
			insituTotal += t.Sim + t.Analytics
		}

		// Offline (store first, analyze after).
		heat2, err := sim.NewHeat3D(sim.Heat3DConfig{NX: nx, NY: ny, NZ: nz, Seed: 11})
		if err != nil {
			return nil, err
		}
		analyze2, done2 := runAnalytics()
		off, err := insitu.Offline(heat2, analyze2, steps, insitu.DiskModel{BytesPerSec: fig1DiskBytesPerSec})
		if err != nil {
			return nil, err
		}
		done2()

		x := float64(iters)
		res.AddPoint("in-situ total", x, seconds(insituTotal))
		res.AddPoint("offline total", x, seconds(off.Total()))
		res.AddPoint("offline I/O", x, seconds(off.Write+off.Read))
		if sp := off.Total().Seconds() / insituTotal.Seconds(); sp > bestSpeedup {
			bestSpeedup = sp
		}
	}
	res.Note("max in-situ speedup over offline: %.1fx (paper: up to 10.4x)", bestSpeedup)
	return res, nil
}

// kmeansInit builds a deterministic flat centroid matrix spread across
// [lo, hi] on every dimension.
func kmeansInit(k, dims int, lo, hi float64) []float64 {
	init := make([]float64, k*dims)
	for c := 0; c < k; c++ {
		v := lo + (hi-lo)*float64(c)/float64(k)
		for d := 0; d < dims; d++ {
			init[c*dims+d] = v
		}
	}
	return init
}
