package harness

import (
	"errors"
	"time"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/insitu"
	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/sim"
)

// fig9Run executes one time sharing configuration functionally and returns
// the pressure-adjusted total: Σ_steps (sim + analytics) × slowdown. An OOM
// is reported as (0, true, nil) — the paper's "crash" configurations.
func fig9Run(s sim.Simulation, analyze insitu.AnalyzeFn, steps int, copyData bool,
	mem *memmodel.Node) (time.Duration, bool, error) {

	timings, err := insitu.TimeSharing(s, analyze, insitu.TimeSharingConfig{
		Steps: steps, CopyData: copyData, Mem: mem,
	})
	var oom *memmodel.OOMError
	if errors.As(err, &oom) {
		return 0, true, nil
	}
	if err != nil {
		return 0, false, err
	}
	var total time.Duration
	for _, t := range timings {
		total += time.Duration(float64(t.Sim+t.Analytics) * t.MemSlowdown)
	}
	return total, false, nil
}

// Fig9a reproduces Figure 9a: time sharing with and without the extra data
// copy, logistic regression on Heat3D, sweeping the time-step size toward
// the node's memory capacity. The copy variant degrades near the bound and
// crashes past it.
func Fig9a(scale Scale) (*Result, error) {
	res := &Result{
		Figure: "Fig 9a",
		Title:  "Zero-copy vs extra-copy time sharing: logistic regression on Heat3D",
		XLabel: "time-step size (MB)",
		YLabel: "pressure-adjusted seconds",
	}
	steps := scale.pick(2, 4)
	nx := scale.pick(12, 32)
	ny := scale.pick(12, 32)
	nzs := []int{48, 64, 80, 96, 112}
	if scale == Small {
		nzs = []int{16, 24, 32}
	}

	// Capacity: the largest configuration's simulation working set plus
	// 60% of its step — the zero-copy variant always fits, the copy
	// variant thrashes near the top and crashes at it. The gentle ramp
	// matches the paper's ≤11% gains before the crash point.
	probe, err := sim.NewHeat3D(sim.Heat3DConfig{NX: nx, NY: ny, NZ: nzs[len(nzs)-1], Seed: 31})
	if err != nil {
		return nil, err
	}
	capacity := probe.MemoryBytes() + probe.StepBytes()*6/10

	var maxGain float64
	for _, nz := range nzs {
		for _, copyData := range []bool{false, true} {
			heat, err := sim.NewHeat3D(sim.Heat3DConfig{NX: nx, NY: ny, NZ: nz, Seed: 31})
			if err != nil {
				return nil, err
			}
			mem := memmodel.NewNode(capacity)
			mem.SetPressureModel(memmodel.DefaultHighWater, 1.12)

			const dims = 15
			app := analytics.NewLogReg(dims, 0.1)
			sched := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
				NumThreads: 1, ChunkSize: dims + 1, NumIters: 3,
			})
			analyze := func(data []float64) error {
				return sched.Run(labelize(data, dims+1, 0, 115), nil)
			}

			var crashed bool
			total, err := bestOf(2, func() (time.Duration, error) {
				t, c, err := fig9Run(heat, analyze, steps, copyData, mem)
				crashed = c
				return t, err
			})
			if err != nil {
				return nil, err
			}
			name := "zero-copy (Smart)"
			if copyData {
				name = "extra copy"
			}
			x := float64(heat.StepBytes()) / (1 << 20)
			if crashed {
				res.AddCrash(name, x)
			} else {
				res.AddPoint(name, x, seconds(total))
			}
		}
	}
	maxGain = seriesGain(res, "extra copy", "zero-copy (Smart)")
	res.Note("max zero-copy gain before the copy variant crashes: %.0f%% (paper: up to 11%%, then crash at 2 GB)", 100*maxGain)
	return res, nil
}

// Fig9b reproduces Figure 9b: the same comparison with mutual information
// on Lulesh, where memory grows cubically in the edge size — small gains
// until the copy variant approaches capacity, then a multiple-x gap and a
// crash (paper: 5x gain at edge 233).
func Fig9b(scale Scale) (*Result, error) {
	res := &Result{
		Figure: "Fig 9b",
		Title:  "Zero-copy vs extra-copy time sharing: mutual information on Lulesh",
		XLabel: "cube edge size",
		YLabel: "pressure-adjusted seconds",
	}
	steps := scale.pick(2, 4)
	edges := []int{40, 56, 68, 76, 79, 80}
	if scale == Small {
		edges = []int{12, 16, 20}
	}

	// Capacity: the zero-copy variant stays below the high-water mark even
	// at the largest edge; the copy variant thrashes on the penultimate
	// edges and crashes at the top one.
	probe, err := sim.NewLulesh(sim.LuleshConfig{Edge: edges[len(edges)-1], Seed: 32})
	if err != nil {
		return nil, err
	}
	capacity := int64(float64(probe.MemoryBytes()+probe.StepBytes()) * 0.995)

	for _, edge := range edges {
		for _, copyData := range []bool{false, true} {
			lul, err := sim.NewLulesh(sim.LuleshConfig{Edge: edge, Seed: 32})
			if err != nil {
				return nil, err
			}
			mem := memmodel.NewNode(capacity)

			app := analytics.NewMutualInfo(0, 2, 100, 0, 2, 100)
			sched := core.MustNewScheduler[float64, int64](app, core.SchedArgs{
				NumThreads: 1, ChunkSize: 2, NumIters: 1,
			})
			analyze := func(data []float64) error {
				sched.ResetCombinationMap()
				return sched.Run(data[:len(data)/2*2], nil)
			}

			var crashed bool
			total, err := bestOf(2, func() (time.Duration, error) {
				t, c, err := fig9Run(lul, analyze, steps, copyData, mem)
				crashed = c
				return t, err
			})
			if err != nil {
				return nil, err
			}
			name := "zero-copy (Smart)"
			if copyData {
				name = "extra copy"
			}
			if crashed {
				res.AddCrash(name, float64(edge))
			} else {
				res.AddPoint(name, float64(edge), seconds(total))
			}
		}
	}
	gain := seriesGain(res, "extra copy", "zero-copy (Smart)")
	res.Note("max zero-copy speedup before the copy variant crashes: %.1fx (paper: up to 5x at edge 233, then crash)", 1+gain)
	return res, nil
}

// seriesGain returns the maximum relative gain of the faster series over
// the slower one across shared x values: max((slow - fast) / fast).
func seriesGain(res *Result, slowName, fastName string) float64 {
	slow := res.SeriesByName(slowName)
	fast := res.SeriesByName(fastName)
	if slow == nil || fast == nil {
		return 0
	}
	var best float64
	for _, p := range slow.Points {
		if p.Crashed {
			continue
		}
		f, ok := fast.YAt(p.X)
		if !ok || f <= 0 {
			continue
		}
		if g := (p.Y - f) / f; g > best {
			best = g
		}
	}
	return best
}
