package harness

import (
	"runtime"
	"time"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/core"
)

// spinHist is a histogram whose per-element cost is tunable by position: the
// first heavyBelow elements spin heavyIters iterations, the rest baseIters.
// The skew models an in-situ reality the paper's equal-split schedule cannot
// see — regions of a time-step where the physics is busier cost more to
// analyze — and it is the workload the work-stealing engine exists for.
type spinHist struct {
	buckets    int
	heavyBelow int
	heavyIters int
	baseIters  int
}

func (h *spinHist) NewRedObj() core.RedObj { return &analytics.CountObj{} }

func (h *spinHist) GenKey(c chunk.Chunk, data []float64, _ core.CombMap) int {
	k := int(data[c.Start]) % h.buckets
	if k < 0 {
		k += h.buckets
	}
	return k
}

func (h *spinHist) Accumulate(c chunk.Chunk, _ []float64, obj core.RedObj) {
	iters := h.baseIters
	if c.Start < h.heavyBelow {
		iters = h.heavyIters
	}
	x := uint64(c.Start) | 1
	for i := 0; i < iters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	if x == 0 { // never true; keeps the spin from being optimized away
		panic("xorshift reached zero")
	}
	obj.(*analytics.CountObj).Count++
}

func (h *spinHist) Merge(src, dst core.RedObj) {
	dst.(*analytics.CountObj).Count += src.(*analytics.CountObj).Count
}

// FigSched is the execution-engine experiment (extension beyond the paper,
// which fixes the equal-split schedule of Section 3.3): wall time of the
// static and work-stealing engines over a skewed workload — the first eighth
// of each time-step costs 16x the rest — and a uniform control, as the
// thread count grows. On a multi-core host stealing should erase most of the
// straggler's tail on the skewed workload and stay within a few percent of
// static on the uniform one; on fewer cores than threads both engines
// serialize and the figure measures scheduling overhead instead.
func FigSched(scale Scale) (*Result, error) {
	res := &Result{
		Figure: "Sched",
		Title:  "Static vs work-stealing engine: skewed and uniform workloads",
		XLabel: "threads",
		YLabel: "seconds per run",
	}
	elems := scale.pick(1<<14, 1<<17)
	threads := []int{1, 2, 4, 8}

	data := make([]float64, elems)
	for i := range data {
		data[i] = float64((i*37)%200) / 10
	}

	type variant struct {
		name       string
		heavyBelow int
	}
	variants := []variant{
		{"skewed", elems / 8},
		{"uniform", 0},
	}
	var lastSteals int64
	for _, v := range variants {
		for _, engine := range []string{core.EngineStatic, core.EngineStealing} {
			for _, nt := range threads {
				app := &spinHist{buckets: 64, heavyBelow: v.heavyBelow,
					heavyIters: 1600, baseIters: 100}
				s := core.MustNewScheduler[float64, int64](app, core.SchedArgs{
					NumThreads: nt, ChunkSize: 1, Engine: engine,
				})
				d, err := bestOf(3, func() (time.Duration, error) {
					s.ResetCombinationMap()
					start := time.Now()
					err := s.Run(data, nil)
					return time.Since(start), err
				})
				if err != nil {
					return nil, err
				}
				res.AddPoint(v.name+"/"+engine, float64(nt), seconds(d))
				if engine == core.EngineStealing && v.name == "skewed" && nt == threads[len(threads)-1] {
					lastSteals = s.Stats().Snapshot().Steals
				}
			}
		}
	}

	maxT := float64(threads[len(threads)-1])
	if st, sl := res.SeriesByName("skewed/"+core.EngineStatic), res.SeriesByName("skewed/"+core.EngineStealing); st != nil && sl != nil {
		a, aok := st.YAt(maxT)
		b, bok := sl.YAt(maxT)
		if aok && bok && b > 0 {
			res.Note("skewed at %d threads: stealing %.2fx vs static (%d steals in the last run)",
				threads[len(threads)-1], a/b, lastSteals)
		}
	}
	if st, sl := res.SeriesByName("uniform/"+core.EngineStatic), res.SeriesByName("uniform/"+core.EngineStealing); st != nil && sl != nil {
		a, aok := st.YAt(maxT)
		b, bok := sl.YAt(maxT)
		if aok && bok && a > 0 {
			res.Note("uniform at %d threads: stealing/static = %.3f (deque overhead)",
				threads[len(threads)-1], b/a)
		}
	}
	res.Note("host: %d CPU cores, GOMAXPROCS=%d — thread counts above the core count serialize",
		runtime.NumCPU(), runtime.GOMAXPROCS(0))
	return res, nil
}
