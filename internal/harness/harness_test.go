package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// The harness tests validate the structural shape of every regenerated
// figure at Small scale: who wins, where crashes fall, which series exist.
// Absolute magnitudes are checked loosely — Small-scale runs are dominated
// by constant overheads by design.

func allPoints(s *Series) []Point {
	if s == nil {
		return nil
	}
	return s.Points
}

func hasCrash(s *Series) bool {
	for _, p := range allPoints(s) {
		if p.Crashed {
			return true
		}
	}
	return false
}

func TestFig1Shape(t *testing.T) {
	res, err := Fig1(Small)
	if err != nil {
		t.Fatal(err)
	}
	insitu := res.SeriesByName("in-situ total")
	offline := res.SeriesByName("offline total")
	io := res.SeriesByName("offline I/O")
	if insitu == nil || offline == nil || io == nil {
		t.Fatalf("missing series: %+v", res.Series)
	}
	if len(insitu.Points) != 5 {
		t.Fatalf("want 5 iteration counts, got %d", len(insitu.Points))
	}
	for _, p := range insitu.Points {
		off, ok := offline.YAt(p.X)
		if !ok {
			t.Fatalf("offline missing x=%v", p.X)
		}
		if off <= p.Y {
			t.Errorf("iters=%v: offline (%v) not slower than in-situ (%v)", p.X, off, p.Y)
		}
		ioY, _ := io.YAt(p.X)
		if ioY <= 0 || ioY >= off {
			t.Errorf("iters=%v: I/O time %v outside (0, total %v)", p.X, ioY, off)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	results, err := Fig5(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("want 3 sub-figures, got %d", len(results))
	}
	for _, res := range results {
		smart := res.SeriesByName("Smart")
		base := res.SeriesByName("conventional MR")
		if smart == nil || base == nil {
			t.Fatalf("%s: missing series", res.Figure)
		}
		for _, p := range smart.Points {
			b, ok := base.YAt(p.X)
			if !ok {
				t.Fatalf("%s: baseline missing x=%v", res.Figure, p.X)
			}
			// The headline result is an order of magnitude at full scale;
			// at Small scale constant costs shrink the gap, so require
			// only a clear (2x) win to keep the test robust under load.
			if b < 2*p.Y {
				t.Errorf("%s threads=%v: baseline %v not >2x Smart %v", res.Figure, p.X, b, p.Y)
			}
		}
	}
}

func TestFig5MemShape(t *testing.T) {
	res, err := Fig5Mem(Small)
	if err != nil {
		t.Fatal(err)
	}
	smart := res.SeriesByName("Smart")
	base := res.SeriesByName("conventional MR")
	for _, p := range smart.Points {
		b, _ := base.YAt(p.X)
		if b <= p.Y {
			t.Errorf("workload %v: conventional footprint %v not above Smart %v", p.X, b, p.Y)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	results, err := Fig6(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("want 2 sub-figures, got %d", len(results))
	}
	for _, res := range results {
		smart := res.SeriesByName("Smart")
		low := res.SeriesByName("hand-coded")
		if smart == nil || low == nil || len(smart.Points) != 4 {
			t.Fatalf("%s: malformed series", res.Figure)
		}
		for _, p := range smart.Points {
			l, _ := low.YAt(p.X)
			if p.Y <= 0 || l <= 0 {
				t.Errorf("%s nodes=%v: non-positive time", res.Figure, p.X)
			}
			// Smart must stay within the same ballpark as hand-coded
			// (small-scale constant costs inflate the gap; bound loosely).
			if p.Y > 4*l {
				t.Errorf("%s nodes=%v: Smart %v vs hand-coded %v beyond ballpark", res.Figure, p.X, p.Y, l)
			}
		}
	}
}

func TestFig6LoCShape(t *testing.T) {
	res, err := Fig6LoC()
	if err != nil {
		t.Skipf("source tree unavailable: %v", err)
	}
	lines := res.SeriesByName("lines")
	if lines == nil || len(lines.Points) != 3 {
		t.Fatalf("malformed LoC result: %+v", res.Series)
	}
	low, _ := lines.YAt(0)
	km, _ := lines.YAt(1)
	lr, _ := lines.YAt(2)
	if low <= km || low <= lr {
		t.Errorf("low-level (%v lines) should exceed each Smart app (%v, %v)", low, km, lr)
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := Fig7(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 9 {
		t.Fatalf("want 9 applications, got %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 4 {
			t.Fatalf("%s: want 4 node counts, got %d", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Errorf("%s nodes=%v: non-positive time", s.Name, p.X)
			}
		}
	}
	if len(res.Notes) == 0 || !strings.Contains(res.Notes[0], "efficiency") {
		t.Error("missing efficiency note")
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 9 {
		t.Fatalf("want 9 applications, got %d", len(res.Series))
	}
	// The compute-heavy window applications must get faster with threads.
	for _, name := range []string{"moving median", "kernel density estimation"} {
		s := res.SeriesByName(name)
		t1, ok1 := s.YAt(1)
		t8, ok8 := s.YAt(8)
		if !ok1 || !ok8 {
			t.Fatalf("%s: missing endpoints", name)
		}
		if t8 >= t1 {
			t.Errorf("%s: no thread speedup (%v -> %v)", name, t1, t8)
		}
	}
}

func TestFig9aShape(t *testing.T) {
	res, err := Fig9a(Small)
	if err != nil {
		t.Fatal(err)
	}
	zero := res.SeriesByName("zero-copy (Smart)")
	cp := res.SeriesByName("extra copy")
	if zero == nil || cp == nil {
		t.Fatal("missing series")
	}
	if hasCrash(zero) {
		t.Error("zero-copy variant crashed")
	}
}

func TestFig9bShape(t *testing.T) {
	res, err := Fig9b(Small)
	if err != nil {
		t.Fatal(err)
	}
	if hasCrash(res.SeriesByName("zero-copy (Smart)")) {
		t.Error("zero-copy variant crashed")
	}
}

func TestFig9FullScaleCrashPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	res, err := Fig9b(Full)
	if err != nil {
		t.Fatal(err)
	}
	if !hasCrash(res.SeriesByName("extra copy")) {
		t.Error("extra-copy variant never crashed at full scale")
	}
	if hasCrash(res.SeriesByName("zero-copy (Smart)")) {
		t.Error("zero-copy variant crashed at full scale")
	}
}

func TestFig10Shape(t *testing.T) {
	results, err := Fig10(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("want 3 sub-figures, got %d", len(results))
	}
	for _, res := range results {
		simOnly := res.SeriesByName("sim-only")
		ts := res.SeriesByName("time sharing")
		if simOnly == nil || ts == nil {
			t.Fatalf("%s: missing baseline series", res.Figure)
		}
		s, _ := simOnly.YAt(0)
		tsv, _ := ts.YAt(1)
		if tsv <= s {
			t.Errorf("%s: time sharing (%v) not above sim-only (%v)", res.Figure, tsv, s)
		}
		// All five space-sharing schemes present.
		for _, scheme := range []string{"50_10", "40_20", "30_30", "20_40", "10_50"} {
			if res.SeriesByName(scheme) == nil {
				t.Errorf("%s: missing scheme %s", res.Figure, scheme)
			}
		}
	}
}

func TestFig11aShape(t *testing.T) {
	res, err := Fig11a(Small)
	if err != nil {
		t.Fatal(err)
	}
	trig := res.SeriesByName("with trigger (Smart)")
	plain := res.SeriesByName("no trigger")
	if trig == nil || plain == nil {
		t.Fatal("missing series")
	}
	if hasCrash(trig) {
		t.Error("triggered variant crashed")
	}
	// Where both complete, the trigger must never lose badly.
	for _, p := range plain.Points {
		if p.Crashed {
			continue
		}
		ty, ok := trig.YAt(p.X)
		if ok && ty > 2*p.Y {
			t.Errorf("x=%v: trigger (%v) much slower than no-trigger (%v)", p.X, ty, p.Y)
		}
	}
}

func TestFig11bShape(t *testing.T) {
	res, err := Fig11b(Small)
	if err != nil {
		t.Fatal(err)
	}
	if hasCrash(res.SeriesByName("with trigger (Smart)")) {
		t.Error("triggered variant crashed")
	}
}

func TestFig11FullScaleCrashAndSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment")
	}
	res, err := Fig11a(Full)
	if err != nil {
		t.Fatal(err)
	}
	if !hasCrash(res.SeriesByName("no trigger")) {
		t.Error("no-trigger variant never crashed at full scale")
	}
	if gain := seriesGain(res, "no trigger", "with trigger (Smart)"); gain < 1 {
		t.Errorf("full-scale early-emission speedup %.2fx below 2x", 1+gain)
	}
}

func TestFigExt1Shape(t *testing.T) {
	res, err := FigExt1(Small)
	if err != nil {
		t.Fatal(err)
	}
	insitu := res.SeriesByName("in-situ")
	intransit := res.SeriesByName("in-transit")
	hybrid := res.SeriesByName("hybrid")
	if insitu == nil || intransit == nil || hybrid == nil {
		t.Fatal("missing series")
	}
	// At the lowest bandwidth, shipping raw time-steps must lose to
	// keeping the analytics in-situ; the hybrid must stay near in-situ.
	lowBW := insitu.Points[0].X
	for _, p := range insitu.Points {
		if p.X < lowBW {
			lowBW = p.X
		}
	}
	is, _ := insitu.YAt(lowBW)
	it, _ := intransit.YAt(lowBW)
	hy, _ := hybrid.YAt(lowBW)
	if it <= is {
		t.Errorf("at %v MB/s: in-transit (%v) should lose to in-situ (%v)", lowBW, it, is)
	}
	// The hybrid's claim: at scarce bandwidth it beats shipping raw steps,
	// because only the small combination map crosses the wire.
	if hy >= it {
		t.Errorf("at %v MB/s: hybrid (%v) should beat in-transit (%v)", lowBW, hy, it)
	}
}

func TestResultPrinting(t *testing.T) {
	res := &Result{Figure: "Fig X", Title: "demo", XLabel: "x", YLabel: "s"}
	res.AddPoint("a", 1, 0.5)
	res.AddPoint("b", 1, 1.5)
	res.AddCrash("b", 2)
	res.Note("headline %d", 42)
	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Fig X", "demo", "CRASH", "headline 42", "0.5", "1.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed table missing %q:\n%s", want, out)
		}
	}
}

func TestParseScale(t *testing.T) {
	if s, err := ParseScale("SMALL"); err != nil || s != Small {
		t.Errorf("ParseScale small: %v %v", s, err)
	}
	if s, err := ParseScale("full"); err != nil || s != Full {
		t.Errorf("ParseScale full: %v %v", s, err)
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("ParseScale accepted junk")
	}
}

func TestSeriesGain(t *testing.T) {
	res := &Result{}
	res.AddPoint("slow", 1, 4)
	res.AddPoint("fast", 1, 2)
	res.AddCrash("slow", 2)
	res.AddPoint("fast", 2, 3)
	if g := seriesGain(res, "slow", "fast"); g != 1 {
		t.Errorf("gain %v, want 1 (crashed points excluded)", g)
	}
	if g := seriesGain(res, "missing", "fast"); g != 0 {
		t.Errorf("gain for missing series %v", g)
	}
}

func TestBestOf(t *testing.T) {
	calls := 0
	d, err := bestOf(3, func() (td time.Duration, err error) {
		calls++
		return time.Duration(4-calls) * time.Second, nil
	})
	if err != nil || calls != 3 || d != time.Second {
		t.Fatalf("bestOf: %v %v calls=%d", d, err, calls)
	}
}
