package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteCSV renders the result as a CSV table: one row per x value, one
// column per series, crashed configurations as "CRASH". This is the
// machine-readable path for replotting the figures.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{r.XLabel}, seriesNames(r)...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, x := range xAxis(r) {
		row := []string{strconv.FormatFloat(x, 'g', -1, 64)}
		for _, s := range r.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					if p.Crashed {
						cell = "CRASH"
					} else {
						cell = strconv.FormatFloat(p.Y, 'g', -1, 64)
					}
					break
				}
			}
			row = append(row, cell)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVName derives a filesystem-friendly name for the figure.
func (r *Result) CSVName() string {
	name := strings.ToLower(r.Figure)
	name = strings.ReplaceAll(name, " ", "")
	return fmt.Sprintf("%s.csv", name)
}

func seriesNames(r *Result) []string {
	names := make([]string, len(r.Series))
	for i, s := range r.Series {
		names[i] = s.Name
	}
	return names
}

func xAxis(r *Result) []float64 {
	set := map[float64]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			set[p.X] = true
		}
	}
	xs := make([]float64, 0, len(set))
	for x := range set {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	return xs
}
