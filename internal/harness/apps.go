package harness

import (
	"time"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
)

// appMeasure is the outcome of one sequential-replay analytics run.
type appMeasure struct {
	stats  *core.Stats
	encode func() ([]byte, error)
}

// modeled returns the replay model's node-local analytics time: slowest
// split plus the serial tail (local combination plus one encode/decode
// serialization per iteration), and the combination payload size.
func (m appMeasure) modeled(iters int) (compute time.Duration, serial time.Duration, commBytes int64, err error) {
	var encoded []byte
	serStart := time.Now()
	const rounds = 8
	for i := 0; i < rounds; i++ {
		if encoded, err = m.encode(); err != nil {
			return 0, 0, 0, err
		}
	}
	serialize := time.Since(serStart) / rounds
	compute = maxDuration(m.stats.SplitTimes)
	serial = m.stats.LocalCombineTime + time.Duration(iters)*2*serialize
	return compute, serial, int64(len(encoded)), nil
}

// appRunner is one of the nine evaluation applications, parameterized over
// the node-local data it will process.
type appRunner struct {
	name string
	// window marks the four window-based applications (Section 5.4 groups
	// them separately when reporting parallel efficiency).
	window bool
	// iters is the iteration count (for serialization charging).
	iters int
	// run executes the application over data with the given thread count in
	// sequential replay mode.
	run func(data []float64, threads int) (appMeasure, error)
}

// nineApps builds the paper's nine applications with the Section 5.4
// parameters, sized for node-local data of n elements with values in
// [lo, hi).
func nineApps(n int, lo, hi float64) []appRunner {
	seqArgs := func(threads, chunkSize, iters int) core.SchedArgs {
		return core.SchedArgs{NumThreads: threads, ChunkSize: chunkSize, NumIters: iters, Sequential: true}
	}
	apps := []appRunner{
		{
			name: "grid aggregation", iters: 1,
			run: func(data []float64, threads int) (appMeasure, error) {
				app := analytics.NewGridAgg(1000, 0)
				s := core.MustNewScheduler[float64, float64](app, seqArgs(threads, 1, 1))
				if err := s.Run(data, nil); err != nil {
					return appMeasure{}, err
				}
				return appMeasure{s.Stats(), s.EncodeCombinationMap}, nil
			},
		},
		{
			name: "histogram", iters: 1,
			run: func(data []float64, threads int) (appMeasure, error) {
				app := analytics.NewHistogram(lo, hi, 1200)
				s := core.MustNewScheduler[float64, int64](app, seqArgs(threads, 1, 1))
				if err := s.Run(data, nil); err != nil {
					return appMeasure{}, err
				}
				return appMeasure{s.Stats(), s.EncodeCombinationMap}, nil
			},
		},
		{
			name: "mutual information", iters: 1,
			run: func(data []float64, threads int) (appMeasure, error) {
				app := analytics.NewMutualInfo(lo, hi, 100, lo, hi, 100)
				s := core.MustNewScheduler[float64, int64](app, seqArgs(threads, 2, 1))
				if err := s.Run(data[:len(data)/2*2], nil); err != nil {
					return appMeasure{}, err
				}
				return appMeasure{s.Stats(), s.EncodeCombinationMap}, nil
			},
		},
		{
			name: "logistic regression", iters: 3,
			run: func(data []float64, threads int) (appMeasure, error) {
				const dims = 15
				rec := dims + 1
				labeled := labelize(data, rec, lo, hi)
				app := analytics.NewLogReg(dims, 0.1)
				s := core.MustNewScheduler[float64, float64](app, seqArgs(threads, rec, 3))
				if err := s.Run(labeled, nil); err != nil {
					return appMeasure{}, err
				}
				return appMeasure{s.Stats(), s.EncodeCombinationMap}, nil
			},
		},
		{
			name: "k-means", iters: 10,
			run: func(data []float64, threads int) (appMeasure, error) {
				const k, dims = 8, 4
				app := analytics.NewKMeans(k, dims)
				args := seqArgs(threads, dims, 10)
				args.Extra = kmeansInit(k, dims, lo, hi)
				s := core.MustNewScheduler[float64, []float64](app, args)
				if err := s.Run(data[:len(data)/dims*dims], nil); err != nil {
					return appMeasure{}, err
				}
				return appMeasure{s.Stats(), s.EncodeCombinationMap}, nil
			},
		},
	}
	const win = 25
	windowApps := []struct {
		name string
		mk   func(data []float64, threads int) (appMeasure, error)
	}{
		{"moving average", func(data []float64, threads int) (appMeasure, error) {
			app := analytics.NewMovingAverage(win, len(data), 0, true)
			s := core.MustNewScheduler[float64, float64](app, seqArgs(threads, 1, 1))
			if err := s.Run2(data, make([]float64, len(data))); err != nil {
				return appMeasure{}, err
			}
			return appMeasure{s.Stats(), s.EncodeCombinationMap}, nil
		}},
		{"moving median", func(data []float64, threads int) (appMeasure, error) {
			app := analytics.NewMovingMedian(win, len(data), 0, true)
			s := core.MustNewScheduler[float64, float64](app, seqArgs(threads, 1, 1))
			if err := s.Run2(data, make([]float64, len(data))); err != nil {
				return appMeasure{}, err
			}
			return appMeasure{s.Stats(), s.EncodeCombinationMap}, nil
		}},
		{"kernel density estimation", func(data []float64, threads int) (appMeasure, error) {
			app := analytics.NewKernelDensity(win, len(data), 0, true, 0)
			s := core.MustNewScheduler[float64, float64](app, seqArgs(threads, 1, 1))
			if err := s.Run2(data, make([]float64, len(data))); err != nil {
				return appMeasure{}, err
			}
			return appMeasure{s.Stats(), s.EncodeCombinationMap}, nil
		}},
		{"Savitzky-Golay filter", func(data []float64, threads int) (appMeasure, error) {
			app := analytics.NewSavitzkyGolay(win, 2, len(data), 0, true)
			s := core.MustNewScheduler[float64, float64](app, seqArgs(threads, 1, 1))
			if err := s.Run2(data, make([]float64, len(data))); err != nil {
				return appMeasure{}, err
			}
			return appMeasure{s.Stats(), s.EncodeCombinationMap}, nil
		}},
	}
	for _, w := range windowApps {
		apps = append(apps, appRunner{name: w.name, window: true, iters: 1, run: w.mk})
	}
	return apps
}

// labelize reinterprets raw simulation output as supervised records: every
// rec-th element (the label slot) is squashed into [0, 1] — a soft label —
// so logistic regression runs on simulation data as in the paper's
// evaluation, where analytics consume whatever field the simulation emits.
func labelize(data []float64, rec int, lo, hi float64) []float64 {
	out := append([]float64(nil), data...)
	for i := rec - 1; i < len(out); i += rec {
		v := (out[i] - lo) / (hi - lo)
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		out[i] = v
	}
	return out
}
