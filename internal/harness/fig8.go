package harness

import (
	"time"

	"github.com/scipioneer/smart/internal/perfmodel"
	"github.com/scipioneer/smart/internal/sim"
)

// Fig8 reproduces Figure 8: total in-situ processing time of all nine
// applications on Lulesh output across 64 modeled nodes, as the per-node
// thread count grows from 1 to 8. The paper's two efficiency bands emerge
// from the cost structure: the cheap first five applications are dominated
// by the simulation's imperfect thread scaling and the serial combination
// tail, while the compute-heavy window applications amortize both.
func Fig8(scale Scale) (*Result, error) {
	res := &Result{
		Figure: "Fig 8",
		Title:  "In-situ processing times vs threads on Lulesh (64 nodes)",
		XLabel: "threads per node",
		YLabel: "seconds per time-step (modeled cluster time)",
	}
	const nodes = 64
	edge := scale.pick(12, 56)
	threadCounts := []int{1, 2, 4, 8}
	comm := perfmodel.DefaultComm
	simAmdahl := perfmodel.Amdahl{SerialFraction: 0.08}

	lul, err := sim.NewLulesh(sim.LuleshConfig{Edge: edge, Seed: 22})
	if err != nil {
		return nil, err
	}
	simSeq, err := bestOf(2, func() (time.Duration, error) {
		start := time.Now()
		err := lul.Step()
		return time.Since(start), err
	})
	if err != nil {
		return nil, err
	}
	data := lul.Data()
	lo, hi := dataRange(data)

	times := make(map[string]map[int]time.Duration)
	isWindow := make(map[string]bool)
	for _, t := range threadCounts {
		simTime := simAmdahl.Time(simSeq, t)
		for _, app := range nineApps(len(data), lo, hi) {
			app := app
			total, err := bestOf(2, func() (time.Duration, error) {
				m, err := app.run(data, t)
				if err != nil {
					return 0, err
				}
				compute, serial, bytes, err := m.modeled(app.iters)
				if err != nil {
					return 0, err
				}
				node := perfmodel.NodeStep{
					ThreadTimes: []time.Duration{simTime + compute},
					SerialTime:  serial,
					CommBytes:   bytes,
				}
				steps := make([]perfmodel.NodeStep, nodes)
				for j := range steps {
					steps[j] = node
				}
				total := perfmodel.StepTime(steps, comm)
				if app.iters > 1 {
					total += time.Duration(app.iters-1) * comm.Collective(nodes, bytes)
				}
				return total, nil
			})
			if err != nil {
				return nil, err
			}
			if times[app.name] == nil {
				times[app.name] = make(map[int]time.Duration)
			}
			times[app.name][t] = total
			isWindow[app.name] = app.window
			res.AddPoint(app.name, float64(t), seconds(total))
		}
	}

	// Thread-scaling parallel efficiency 1 -> 8 threads, averaged over the
	// first five applications and over the window applications.
	base, top := threadCounts[0], threadCounts[len(threadCounts)-1]
	var firstFive, window float64
	var nFirst, nWin int
	for name, ts := range times {
		eff := perfmodel.Efficiency(base, ts[base], top, ts[top])
		if isWindow[name] {
			window += eff
			nWin++
		} else {
			firstFive += eff
			nFirst++
		}
	}
	res.Note("average parallel efficiency 1->8 threads: first five apps %.0f%%, window apps %.0f%% (paper: 59%% and 79%%)",
		100*firstFive/float64(nFirst), 100*window/float64(nWin))
	return res, nil
}

// dataRange returns the min and max of a data slice, padded slightly so
// histogram edges are safe.
func dataRange(data []float64) (lo, hi float64) {
	if len(data) == 0 {
		return 0, 1
	}
	lo, hi = data[0], data[0]
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	return lo - 0.001*span, hi + 0.001*span
}
