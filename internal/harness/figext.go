package harness

import (
	"time"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/perfmodel"
	"github.com/scipioneer/smart/internal/sim"
)

// FigExt1 is an extension experiment beyond the paper (its Section 6 places
// Smart on in-transit and hybrid platforms without evaluating them): the
// per-step cost of the three placements for histogram analytics as the
// time-step size grows, on a node pair (one simulation, one staging).
//
//   - in-situ (time sharing): the simulation stalls for the analytics but
//     nothing crosses the network.
//   - in-transit: the raw time-step ships to the staging node, which
//     overlaps its analytics with the next simulation step — the simulation
//     never stalls, but the full step crosses the interconnect.
//   - hybrid: reduction and local combination run in-situ; only the
//     combination map ships (a few hundred bytes), and the staging node
//     merely merges.
//
// All compute terms are measured; the transfer is charged by the α–β model,
// and the producer pays the injection cost of what it ships — which is what
// turns scarce interconnect bandwidth against the in-transit placement.
func FigExt1(scale Scale) (*Result, error) {
	res := &Result{
		Figure: "Ext 1",
		Title:  "In-situ vs in-transit vs hybrid: histogram per-step cost vs interconnect bandwidth",
		XLabel: "interconnect bandwidth (MB/s)",
		YLabel: "modeled seconds per step",
	}
	elems := scale.pick(1<<14, 1<<19)
	bandwidths := []float64{8192, 2048, 512, 128, 32}

	em, err := sim.NewEmulator(sim.EmulatorConfig{StepElems: elems, Seed: 81})
	if err != nil {
		return nil, err
	}
	simTime, err := bestOf(3, func() (time.Duration, error) {
		start := time.Now()
		err := em.Step()
		return time.Since(start), err
	})
	if err != nil {
		return nil, err
	}
	data := em.Data()

	app := analytics.NewHistogram(-4, 4, 1200)
	var anaTime time.Duration
	var encoded []byte
	if _, err := bestOf(3, func() (time.Duration, error) {
		s := core.MustNewScheduler[float64, int64](app, core.SchedArgs{
			NumThreads: 1, ChunkSize: 1, NumIters: 1,
		})
		start := time.Now()
		if err := s.Run(data, nil); err != nil {
			return 0, err
		}
		anaTime = time.Since(start)
		encoded, err = s.EncodeCombinationMap()
		return anaTime, err
	}); err != nil {
		return nil, err
	}
	// Merging one shipped map is one decode plus local combination of its
	// entries; measure it directly.
	mergeTime, err := bestOf(3, func() (time.Duration, error) {
		acc := core.MustNewScheduler[float64, int64](app, core.SchedArgs{
			NumThreads: 1, ChunkSize: 1, NumIters: 1,
		})
		start := time.Now()
		err := acc.MergeEncodedCombinationMap(encoded)
		return time.Since(start), err
	})
	if err != nil {
		return nil, err
	}

	bytesRaw := int64(len(data)) * 8
	bytesMap := int64(len(encoded))
	var crossover float64
	for _, mbps := range bandwidths {
		comm := perfmodel.CommModel{Latency: 25 * time.Microsecond, BytesPerSec: mbps * (1 << 20)}
		xferRaw := comm.Collective(2, bytesRaw)
		xferMap := comm.Collective(2, bytesMap)

		insitu := simTime + anaTime
		// In-transit: the producer stalls for the injection; staging
		// overlaps its analytics with the next simulation step, so the
		// steady-state step cost is the slower side of the pipeline.
		intransit := max(simTime+xferRaw, xferRaw+anaTime)
		// Hybrid: analytics stays in-situ; only the map ships and merges.
		hybrid := simTime + anaTime + xferMap + mergeTime

		res.AddPoint("in-situ", mbps, seconds(insitu))
		res.AddPoint("in-transit", mbps, seconds(intransit))
		res.AddPoint("hybrid", mbps, seconds(hybrid))
		if intransit > insitu && crossover == 0 {
			crossover = mbps
		}
	}
	res.Note("shipped per step: in-transit %d bytes, hybrid %d bytes (%.0fx less)",
		bytesRaw, bytesMap, float64(bytesRaw)/float64(bytesMap))
	if crossover > 0 {
		res.Note("in-transit loses to in-situ below ~%.0f MB/s; hybrid stays within the map-merge cost of in-situ at every bandwidth", crossover)
	}
	return res, nil
}
