// Package harness regenerates every table and figure of the paper's
// evaluation (Section 5). Each Fig* function runs the experiment at a chosen
// scale and returns a Result whose series carry the same rows the paper
// plots; cmd/smartbench prints them and bench_test.go wraps them as
// benchmarks. Parameters are scaled to laptop size — EXPERIMENTS.md records
// the mapping and the paper-vs-measured shape for every figure.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Scale selects experiment sizing.
type Scale int

// Available scales. Small keeps every experiment under a second or two for
// tests; Full is what cmd/smartbench and EXPERIMENTS.md use.
const (
	Small Scale = iota
	Full
)

// ParseScale maps a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "small":
		return Small, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("harness: unknown scale %q (want small or full)", s)
}

// pick returns small at Small scale and full otherwise.
func (s Scale) pick(small, full int) int {
	if s == Small {
		return small
	}
	return full
}

// Point is one x/y sample of a series.
type Point struct {
	X float64
	Y float64
	// Crashed marks configurations the paper reports as out-of-memory
	// crashes rather than data points.
	Crashed bool
}

// Series is one labeled line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Result is one regenerated figure or table.
type Result struct {
	Figure string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes carries derived headline numbers ("max speedup 5.4x", ...).
	Notes []string
}

// AddPoint appends a sample to the named series, creating it on first use.
func (r *Result) AddPoint(series string, x, y float64) { r.add(series, Point{X: x, Y: y}) }

// AddCrash records an out-of-memory configuration.
func (r *Result) AddCrash(series string, x float64) {
	r.add(series, Point{X: x, Crashed: true})
}

func (r *Result) add(series string, p Point) {
	for i := range r.Series {
		if r.Series[i].Name == series {
			r.Series[i].Points = append(r.Series[i].Points, p)
			return
		}
	}
	r.Series = append(r.Series, Series{Name: series, Points: []Point{p}})
}

// Note appends a formatted headline note.
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// SeriesByName returns the named series, or nil.
func (r *Result) SeriesByName(name string) *Series {
	for i := range r.Series {
		if r.Series[i].Name == name {
			return &r.Series[i]
		}
	}
	return nil
}

// YAt returns the series' value at x (NaN-free lookup; ok reports presence
// of a non-crashed point).
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x && !p.Crashed {
			return p.Y, true
		}
	}
	return 0, false
}

// Print renders the result as an aligned table, one row per x value and one
// column per series — the same rows the paper's figures plot.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.Figure, r.Title)

	// Collect the x axis.
	xsSet := map[float64]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	// Header.
	cols := make([]string, 0, len(r.Series)+1)
	cols = append(cols, r.XLabel)
	for _, s := range r.Series {
		cols = append(cols, s.Name)
	}
	widths := make([]int, len(cols))
	rows := make([][]string, 0, len(xs))
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range r.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					if p.Crashed {
						cell = "CRASH"
					} else {
						cell = trimFloat(p.Y)
					}
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(row []string) {
		parts := make([]string, len(row))
		for i, cell := range row {
			parts[i] = fmt.Sprintf("%*s", widths[i], cell)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(cols)
	for _, row := range rows {
		printRow(row)
	}
	if r.YLabel != "" {
		fmt.Fprintf(w, "  (values: %s)\n", r.YLabel)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// trimFloat formats a float compactly.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// seconds converts a duration to float seconds for plotting.
func seconds(d time.Duration) float64 { return d.Seconds() }

// bestOf runs a measurement n times and keeps the minimum — the standard
// defense against scheduler noise on a shared single-core host.
func bestOf(n int, f func() (time.Duration, error)) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < n; i++ {
		d, err := f()
		if err != nil {
			return 0, err
		}
		if i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// sumDurations adds a slice of durations.
func sumDurations(ds []time.Duration) time.Duration {
	var t time.Duration
	for _, d := range ds {
		t += d
	}
	return t
}

// maxDuration returns the largest duration.
func maxDuration(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}
