package harness

import (
	"context"
	"time"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/stream"
)

// FigStream is the streaming-layer experiment (extension beyond the paper,
// which runs one batch reduction per invocation): sustained window
// throughput of a continuous tumbling histogram query as the window widens,
// comparing the warm path — one SchedCombiner whose combination map is
// recycled in place between fires — against a fresh scheduler built for
// every window. The gap is the setup cost RunWindowContext amortizes away;
// it narrows as windows widen and per-element work starts to dominate.
func FigStream(scale Scale) (*Result, error) {
	res := &Result{
		Figure: "Stream",
		Title:  "Continuous windowed queries: warm reseed vs per-window rebuild",
		XLabel: "steps per tumbling window",
		YLabel: "windows per second",
	}
	totalSteps := scale.pick(64, 256)
	elemsPerStep := scale.pick(1<<10, 1<<12)
	args := core.SchedArgs{NumThreads: 2, ChunkSize: 1, CombineShards: 4}

	data := make([]float64, elemsPerStep)
	for i := range data {
		data[i] = float64((i*37)%200)/10 - 5
	}
	src := func() stream.Source {
		return stream.SourceFunc(func(ctx context.Context, push func(stream.Event) error) error {
			for t := 0; t < totalSteps; t++ {
				if err := push(stream.Event{Time: int64(t), Data: data}); err != nil {
					return err
				}
			}
			return nil
		})
	}

	type mode struct {
		name string
		comb func() (stream.Combiner, error)
	}
	modes := []mode{
		{"reseed", func() (stream.Combiner, error) {
			return stream.NewSchedCombiner[int64](stream.SchedOptions[int64]{
				Build: func(int) (core.Analytics[float64, int64], error) {
					return analytics.NewHistogram(-5, 5, 32), nil
				},
				Args: args,
			})
		}},
		{"rebuild", func() (stream.Combiner, error) {
			return stream.CombinerFunc(func(ctx context.Context, _ stream.Window, elems []float64) (any, error) {
				s, err := core.NewScheduler[float64, int64](analytics.NewHistogram(-5, 5, 32), args)
				if err != nil {
					return nil, err
				}
				if err := s.RunContext(ctx, elems, nil); err != nil {
					return nil, err
				}
				return nil, nil
			}), nil
		}},
	}

	type latencyProbe struct {
		winSteps int
		mean     time.Duration
	}
	var probes []latencyProbe
	for _, winSteps := range []int{1, 2, 4, 8, 16} {
		for _, m := range modes {
			comb, err := m.comb()
			if err != nil {
				return nil, err
			}
			windows := 0
			var latency time.Duration
			d, err := bestOf(3, func() (time.Duration, error) {
				windows, latency = 0, 0
				start := time.Now()
				err := stream.New().
					From(src()).
					Window(stream.Tumbling(int64(winSteps))).
					Combine(comb).
					To(stream.CallbackSink(func(r stream.WindowResult) error {
						windows++
						latency += r.Latency
						return nil
					})).
					Run(context.Background())
				return time.Since(start), err
			})
			if err != nil {
				return nil, err
			}
			res.AddPoint(m.name, float64(winSteps), float64(windows)/seconds(d))
			if m.name == "reseed" {
				probes = append(probes, latencyProbe{winSteps, latency / time.Duration(windows)})
			}
		}
	}

	for _, x := range []float64{1, 16} {
		rs, rb := res.SeriesByName("reseed"), res.SeriesByName("rebuild")
		a, aok := rs.YAt(x)
		b, bok := rb.YAt(x)
		if aok && bok && b > 0 {
			res.Note("window of %.0f step(s): reseed sustains %.2fx the rebuild throughput", x, a/b)
		}
	}
	if len(probes) > 0 {
		first, last := probes[0], probes[len(probes)-1]
		res.Note("mean per-window latency (reseed): %v at %d step(s), %v at %d steps",
			first.mean.Round(time.Microsecond), first.winSteps,
			last.mean.Round(time.Microsecond), last.winSteps)
	}
	res.Note("%d steps x %d elements per step; tumbling histogram, 2 threads", totalSteps, elemsPerStep)
	return res, nil
}
