package insitu

import (
	"fmt"

	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/sim"
)

// In-transit processing (an extension beyond the paper's core contribution;
// its Section 6 positions Smart as deployable on in-transit and hybrid
// platforms such as PreDatA and GLEAN): analytics runs on dedicated staging
// ranks instead of the simulation's ranks.
//
//   - In-transit: simulation ranks ship each raw time-step partition to
//     their staging rank; staging ranks run the unchanged Smart analytics.
//   - Hybrid: simulation ranks run the reduction and local combination
//     in-situ (global combination off) and ship only the small combination
//     map; staging ranks merge the maps — in-situ compute, in-transit
//     synchronization.

// Message tags of the in-transit protocol.
const (
	tagTimeStep = 201
	tagComMap   = 202
)

// InTransitSim drives one simulation rank: advance the simulation and ship
// every time-step's raw partition to the staging rank.
func InTransitSim(comm *mpi.Comm, staging int, s sim.Simulation, steps int) error {
	if steps <= 0 {
		return fmt.Errorf("insitu: steps must be positive")
	}
	for i := 0; i < steps; i++ {
		if err := s.Step(); err != nil {
			return fmt.Errorf("insitu: simulation step %d: %w", i, err)
		}
		if err := comm.SendFloat64s(staging, tagTimeStep, s.Data()); err != nil {
			return fmt.Errorf("insitu: ship step %d: %w", i, err)
		}
	}
	return nil
}

// InTransitStaging drives one staging rank: per step, receive each assigned
// simulation rank's partition and analyze it. The analyze function receives
// the world rank of the producing simulation alongside its data, so
// position-dependent analytics can set their output base.
func InTransitStaging(comm *mpi.Comm, simRanks []int, steps int,
	analyze func(simRank int, data []float64) error) error {

	if steps <= 0 {
		return fmt.Errorf("insitu: steps must be positive")
	}
	if len(simRanks) == 0 {
		return fmt.Errorf("insitu: staging rank with no assigned simulations")
	}
	for i := 0; i < steps; i++ {
		for _, r := range simRanks {
			data, err := comm.RecvFloat64s(r, tagTimeStep)
			if err != nil {
				return fmt.Errorf("insitu: receive step %d from %d: %w", i, r, err)
			}
			if err := analyze(r, data); err != nil {
				return fmt.Errorf("insitu: analytics for step %d from %d: %w", i, r, err)
			}
		}
	}
	return nil
}

// HybridSim drives one simulation rank in hybrid mode: per step, run the
// in-situ part (reduction + local combination; the caller's reduceLocal
// typically runs a Scheduler with global combination disabled and returns
// its encoded combination map) and ship only the map.
func HybridSim(comm *mpi.Comm, staging int, s sim.Simulation, steps int,
	reduceLocal func(data []float64) ([]byte, error)) error {

	if steps <= 0 {
		return fmt.Errorf("insitu: steps must be positive")
	}
	for i := 0; i < steps; i++ {
		if err := s.Step(); err != nil {
			return fmt.Errorf("insitu: simulation step %d: %w", i, err)
		}
		encoded, err := reduceLocal(s.Data())
		if err != nil {
			return fmt.Errorf("insitu: local reduction at step %d: %w", i, err)
		}
		if err := comm.Send(staging, tagComMap, encoded); err != nil {
			return fmt.Errorf("insitu: ship map at step %d: %w", i, err)
		}
	}
	return nil
}

// HybridStaging drives one staging rank in hybrid mode: per step, collect
// every assigned simulation rank's encoded combination map and hand the
// batch to merge (which typically decodes and merges them into a global
// map, then combines across staging ranks).
func HybridStaging(comm *mpi.Comm, simRanks []int, steps int,
	merge func(encoded [][]byte) error) error {

	if steps <= 0 {
		return fmt.Errorf("insitu: steps must be positive")
	}
	if len(simRanks) == 0 {
		return fmt.Errorf("insitu: staging rank with no assigned simulations")
	}
	for i := 0; i < steps; i++ {
		batch := make([][]byte, 0, len(simRanks))
		for _, r := range simRanks {
			buf, err := comm.Recv(r, tagComMap)
			if err != nil {
				return fmt.Errorf("insitu: receive map at step %d from %d: %w", i, r, err)
			}
			batch = append(batch, buf)
		}
		if err := merge(batch); err != nil {
			return fmt.Errorf("insitu: merge at step %d: %w", i, err)
		}
	}
	return nil
}

// AssignStaging maps simulation ranks onto staging ranks round-robin and
// returns, for each staging rank index, the list of simulation world ranks
// it serves. Simulation ranks are 0..simCount-1 and staging ranks are
// simCount..simCount+stagingCount-1 in the combined world.
func AssignStaging(simCount, stagingCount int) ([][]int, error) {
	if simCount <= 0 || stagingCount <= 0 {
		return nil, fmt.Errorf("insitu: need at least one simulation and one staging rank")
	}
	out := make([][]int, stagingCount)
	for r := 0; r < simCount; r++ {
		s := r % stagingCount
		out[s] = append(out[s], r)
	}
	return out, nil
}
