package insitu

import (
	"errors"
	"testing"
	"time"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/sim"
)

func newHeat(t *testing.T) *sim.Heat3D {
	t.Helper()
	h, err := sim.NewHeat3D(sim.Heat3DConfig{NX: 8, NY: 8, NZ: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTimeSharingRunsAllSteps(t *testing.T) {
	h := newHeat(t)
	app := analytics.NewHistogram(0, 120, 10)
	s := core.MustNewScheduler[float64, int64](app, core.SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1})
	steps := 0
	analyze := func(data []float64) error {
		steps++
		s.ResetCombinationMap()
		return s.Run(data, nil)
	}
	timings, err := TimeSharing(h, analyze, TimeSharingConfig{Steps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if steps != 5 || len(timings) != 5 {
		t.Fatalf("steps %d timings %d", steps, len(timings))
	}
	for i, tm := range timings {
		if tm.Sim <= 0 || tm.Analytics <= 0 || tm.MemSlowdown != 1 {
			t.Fatalf("step %d timing %+v", i, tm)
		}
	}
}

func TestTimeSharingZeroCopySeesLiveBuffer(t *testing.T) {
	h := newHeat(t)
	var seen []float64
	analyze := func(data []float64) error { seen = data; return nil }
	if _, err := TimeSharing(h, analyze, TimeSharingConfig{Steps: 1}); err != nil {
		t.Fatal(err)
	}
	if &seen[0] != &h.Data()[0] {
		t.Fatal("zero-copy mode did not hand the live simulation buffer to analytics")
	}
}

func TestTimeSharingCopyIsolatesBuffer(t *testing.T) {
	h := newHeat(t)
	var seen []float64
	analyze := func(data []float64) error { seen = data; return nil }
	if _, err := TimeSharing(h, analyze, TimeSharingConfig{Steps: 1, CopyData: true}); err != nil {
		t.Fatal(err)
	}
	if &seen[0] == &h.Data()[0] {
		t.Fatal("copy mode handed the live buffer to analytics")
	}
	for i := range seen {
		if seen[i] != h.Data()[i] {
			t.Fatal("copy differs from simulation output")
		}
	}
}

func TestTimeSharingMemAccounting(t *testing.T) {
	h := newHeat(t)
	// Capacity fits the simulation but not simulation + copy.
	node := memmodel.NewNode(h.MemoryBytes() + h.StepBytes()/2)
	analyze := func([]float64) error { return nil }
	if _, err := TimeSharing(h, analyze, TimeSharingConfig{Steps: 1, Mem: node}); err != nil {
		t.Fatalf("zero-copy under memory bound failed: %v", err)
	}
	var oom *memmodel.OOMError
	_, err := TimeSharing(h, analyze, TimeSharingConfig{Steps: 1, CopyData: true, Mem: node})
	if !errors.As(err, &oom) {
		t.Fatalf("copy mode under memory bound: %v, want OOM", err)
	}
	if node.Used() != 0 {
		t.Fatalf("leaked %d bytes", node.Used())
	}
}

func TestTimeSharingPressureSampled(t *testing.T) {
	h := newHeat(t)
	node := memmodel.NewNode(h.MemoryBytes() + h.StepBytes() + 1)
	node.SetPressureModel(0.5, 4)
	timings, err := TimeSharing(h, func([]float64) error { return nil },
		TimeSharingConfig{Steps: 2, CopyData: true, Mem: node})
	if err != nil {
		t.Fatal(err)
	}
	if timings[0].MemSlowdown <= 1 {
		t.Fatalf("pressure factor %v, want > 1 near capacity", timings[0].MemSlowdown)
	}
}

func TestTimeSharingAnalyticsError(t *testing.T) {
	h := newHeat(t)
	boom := errors.New("boom")
	_, err := TimeSharing(h, func([]float64) error { return boom }, TimeSharingConfig{Steps: 3})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestSpaceSharingEquivalentToTimeSharing(t *testing.T) {
	const steps = 6
	hist := func() ([]int64, error) {
		h := newHeat(t)
		app := analytics.NewHistogram(0, 120, 8)
		s := core.MustNewScheduler[float64, int64](app, core.SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
		acc := make([]int64, 8)
		analyze := func(data []float64) error {
			s.ResetCombinationMap()
			out := make([]int64, 8)
			if err := s.Run(data, out); err != nil {
				return err
			}
			for i := range acc {
				acc[i] += out[i]
			}
			return nil
		}
		_, err := TimeSharing(h, analyze, TimeSharingConfig{Steps: steps})
		return acc, err
	}
	want, err := hist()
	if err != nil {
		t.Fatal(err)
	}

	h := newHeat(t)
	app := analytics.NewHistogram(0, 120, 8)
	s := core.MustNewScheduler[float64, int64](app, core.SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 1, BufferCells: 3,
	})
	acc := make([]int64, 8)
	consume := func() error {
		s.ResetCombinationMap()
		out := make([]int64, 8)
		if err := s.RunShared(out); err != nil {
			return err
		}
		for i := range acc {
			acc[i] += out[i]
		}
		return nil
	}
	res, err := SpaceSharing(h, s.Feed, consume, s.CloseFeed, SpaceSharingConfig{Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wall <= 0 || res.SimBusy <= 0 || res.AnalyticsBusy <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	for i := range want {
		if acc[i] != want[i] {
			t.Fatalf("bucket %d: space %d time %d", i, acc[i], want[i])
		}
	}
}

func TestSpaceSharingBackpressure(t *testing.T) {
	// A single-cell buffer with a slow consumer forces the producer to
	// block — the Section 3.2 behaviour.
	h := newHeat(t)
	s := core.MustNewScheduler[float64, int64](analytics.NewHistogram(0, 120, 4),
		core.SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1, BufferCells: 1})
	consume := func() error {
		s.ResetCombinationMap()
		return s.RunShared(nil)
	}
	if _, err := SpaceSharing(h, s.Feed, consume, s.CloseFeed, SpaceSharingConfig{Steps: 8}); err != nil {
		t.Fatal(err)
	}
	produced, consumed, _ := s.BufferStats()
	if produced != 8 || consumed != 8 {
		t.Fatalf("buffer stats %d/%d", produced, consumed)
	}
}

func TestOfflineMatchesInSitu(t *testing.T) {
	const steps = 4
	runInsitu := func() []int64 {
		h := newHeat(t)
		app := analytics.NewHistogram(0, 120, 8)
		s := core.MustNewScheduler[float64, int64](app, core.SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
		acc := make([]int64, 8)
		TimeSharing(h, func(data []float64) error {
			s.ResetCombinationMap()
			out := make([]int64, 8)
			if err := s.Run(data, out); err != nil {
				return err
			}
			for i := range acc {
				acc[i] += out[i]
			}
			return nil
		}, TimeSharingConfig{Steps: steps})
		return acc
	}
	want := runInsitu()

	h := newHeat(t)
	app := analytics.NewHistogram(0, 120, 8)
	s := core.MustNewScheduler[float64, int64](app, core.SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	acc := make([]int64, 8)
	res, err := Offline(h, func(data []float64) error {
		s.ResetCombinationMap()
		out := make([]int64, 8)
		if err := s.Run(data, out); err != nil {
			return err
		}
		for i := range acc {
			acc[i] += out[i]
		}
		return nil
	}, steps, DiskModel{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if acc[i] != want[i] {
			t.Fatalf("bucket %d: offline %d in-situ %d", i, acc[i], want[i])
		}
	}
	if res.Bytes != int64(steps)*h.StepBytes() {
		t.Fatalf("spooled %d bytes, want %d", res.Bytes, int64(steps)*h.StepBytes())
	}
	if res.Write <= 0 || res.Read <= 0 {
		t.Fatalf("io times %+v", res)
	}
}

func TestOfflineBandwidthModelDominates(t *testing.T) {
	h := newHeat(t)
	// 1 KB/s modeled bandwidth makes the charged I/O time enormous
	// relative to measured SSD time.
	res, err := Offline(h, func([]float64) error { return nil }, 2, DiskModel{BytesPerSec: 1024})
	if err != nil {
		t.Fatal(err)
	}
	wantIO := float64(res.Bytes) / 1024
	if res.Write.Seconds() < wantIO*0.99 {
		t.Fatalf("modeled write %v for %d bytes at 1KB/s", res.Write, res.Bytes)
	}
	if res.Total() < res.Write {
		t.Fatal("total smaller than a component")
	}
}

func TestDriverValidation(t *testing.T) {
	h := newHeat(t)
	if _, err := TimeSharing(h, func([]float64) error { return nil }, TimeSharingConfig{}); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := Offline(h, func([]float64) error { return nil }, 0, DiskModel{}); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := SpaceSharing(h, nil, nil, nil, SpaceSharingConfig{}); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestSpaceSharingDriverBlocksProducer(t *testing.T) {
	// Satellite regression for the observability work: with a single-cell
	// buffer and a consumer that is deliberately slower than the
	// simulation, the driver must exhibit real backpressure — a non-zero
	// producer wait count and non-zero cumulative producer blocked time,
	// both surfaced through the scheduler's buffer introspection.
	h := newHeat(t)
	s := core.MustNewScheduler[float64, int64](analytics.NewHistogram(0, 120, 4),
		core.SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1, BufferCells: 1})
	consume := func() error {
		time.Sleep(3 * time.Millisecond) // slower than the 8^3 heat step
		s.ResetCombinationMap()
		return s.RunShared(nil)
	}
	if _, err := SpaceSharing(h, s.Feed, consume, s.CloseFeed, SpaceSharingConfig{Steps: 6}); err != nil {
		t.Fatal(err)
	}
	_, _, producerWaits := s.BufferStats()
	if producerWaits == 0 {
		t.Fatal("producer never waited on a full buffer; backpressure not exercised")
	}
	producerBlocked, _ := s.BufferBlockedTime()
	if producerBlocked <= 0 {
		t.Fatalf("producer blocked time = %v, want > 0", producerBlocked)
	}
}
