// Package insitu provides the execution drivers that couple a simulation to
// Smart analytics in the paper's three arrangements:
//
//   - TimeSharing: simulation and analytics alternate on the same cores;
//     the analytics reads the simulation's output buffer in place (zero
//     copy), or through an extra copy for the Figure 9 baseline.
//   - SpaceSharing: simulation and analytics run concurrently as producer
//     and consumer of the scheduler's circular buffer (Section 3.2).
//   - Offline: the store-first-analyze-after pipeline of Figure 1 — every
//     time-step is written to disk and read back before analysis, through a
//     bandwidth model that reproduces HPC I/O costs at laptop scale.
package insitu

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/obs"
	"github.com/scipioneer/smart/internal/sim"
)

// Per-step end-to-end latency by execution mode. For time sharing a step is
// sim compute plus in-place analytics; for space sharing it is the consumer's
// cadence (how often a buffered step drains); for offline it is the charged
// sim + spool write + spool read + analytics cost of one time-step.
var (
	metStepTime    = obs.DefaultRegistry().Histogram(`smart_insitu_step_seconds{mode="time"}`, obs.DurationBuckets)
	metStepSpace   = obs.DefaultRegistry().Histogram(`smart_insitu_step_seconds{mode="space"}`, obs.DurationBuckets)
	metStepOffline = obs.DefaultRegistry().Histogram(`smart_insitu_step_seconds{mode="offline"}`, obs.DurationBuckets)
)

// stepSpan records one sim↔analytics handoff phase on the default observer.
func stepSpan(cat, name string, step int, start time.Time) {
	obs.Default().RecordSpan(obs.Span{
		Cat: cat, Name: name, Start: start, Dur: time.Since(start),
		Attrs: map[string]any{"step": step},
	})
}

// AnalyzeFn consumes one time-step's output partition.
type AnalyzeFn func(data []float64) error

// StepTiming records the measured durations of one time-step.
type StepTiming struct {
	// Sim is the simulation compute time.
	Sim time.Duration
	// Analytics is the analytics compute time (including any copy).
	Analytics time.Duration
	// MemSlowdown is the virtual memory pressure factor sampled during the
	// step (1.0 without a memory model).
	MemSlowdown float64
}

// TimeSharingConfig configures a time sharing run.
type TimeSharingConfig struct {
	// Steps is the number of time-steps to run.
	Steps int
	// CopyData, when true, routes each step's output through an extra
	// buffer before analysis — the baseline Figure 9 compares against.
	CopyData bool
	// Mem, when non-nil, charges the simulation working set (and the copy
	// buffer, if any) and samples the pressure factor every step.
	Mem *memmodel.Node
}

// TimeSharing alternates simulation steps and analytics on the same
// resources, returning per-step timings. In the zero-copy arrangement the
// analytics receives the simulation's live buffer — Smart's read pointer.
func TimeSharing(s sim.Simulation, analyze AnalyzeFn, cfg TimeSharingConfig) ([]StepTiming, error) {
	return TimeSharingContext(context.Background(), s, analyze, cfg)
}

// TimeSharingContext is TimeSharing with cancellation: the context is
// checked before every simulation step, so a cancelled driver stops at the
// next step boundary with the timings gathered so far. Finer-grained
// cancellation inside a step belongs to the analytics callback — pass the
// same ctx into Scheduler.RunContext there and a cancelled job stops within
// one chunk instead of one time-step.
func TimeSharingContext(ctx context.Context, s sim.Simulation, analyze AnalyzeFn, cfg TimeSharingConfig) ([]StepTiming, error) {
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("insitu: steps must be positive")
	}
	var simAlloc, copyAlloc *memmodel.Allocation
	if cfg.Mem != nil {
		var err error
		simAlloc, err = cfg.Mem.Alloc("simulation", s.MemoryBytes())
		if err != nil {
			return nil, err
		}
		defer simAlloc.Free()
		if cfg.CopyData {
			copyAlloc, err = cfg.Mem.Alloc("analytics copy", s.StepBytes())
			if err != nil {
				return nil, err
			}
			defer copyAlloc.Free()
		}
	}
	var copyBuf []float64
	if cfg.CopyData {
		copyBuf = make([]float64, len(s.Data()))
	}

	timings := make([]StepTiming, 0, cfg.Steps)
	for i := 0; i < cfg.Steps; i++ {
		if ctx.Err() != nil {
			return timings, fmt.Errorf("insitu: cancelled before step %d: %w", i, context.Cause(ctx))
		}
		t := StepTiming{MemSlowdown: 1}
		start := time.Now()
		if err := s.Step(); err != nil {
			return timings, fmt.Errorf("insitu: simulation step %d: %w", i, err)
		}
		t.Sim = time.Since(start)
		stepSpan("insitu.time", "sim step", i, start)

		start = time.Now()
		data := s.Data()
		if cfg.CopyData {
			copy(copyBuf, data)
			data = copyBuf
		}
		if err := analyze(data); err != nil {
			return timings, fmt.Errorf("insitu: analytics at step %d: %w", i, err)
		}
		t.Analytics = time.Since(start)
		stepSpan("insitu.time", "analytics step", i, start)
		metStepTime.Observe((t.Sim + t.Analytics).Seconds())
		if cfg.Mem != nil {
			t.MemSlowdown = cfg.Mem.SlowdownFactor()
		}
		timings = append(timings, t)
	}
	return timings, nil
}

// SpaceSharingConfig configures a space sharing run.
type SpaceSharingConfig struct {
	// Steps is the number of time-steps.
	Steps int
	// Mem charges the simulation working set when non-nil. (The circular
	// buffer cells are charged by the scheduler's Feed.)
	Mem *memmodel.Node
}

// SpaceSharingResult reports a space sharing run's measured behaviour.
type SpaceSharingResult struct {
	// Wall is the end-to-end duration with both tasks concurrent.
	Wall time.Duration
	// SimBusy and AnalyticsBusy are the per-task busy times.
	SimBusy, AnalyticsBusy time.Duration
}

// SpaceSharing runs the simulation task (stepping and feeding) concurrently
// with the analytics task (consuming), exactly the two-task structure of
// paper Listing 2. feed must copy into the scheduler's circular buffer
// (Scheduler.Feed does); consume must drain one buffered step per call
// (Scheduler.RunShared does).
func SpaceSharing(s sim.Simulation, feed func([]float64) error, consume func() error,
	closeFeed func(), cfg SpaceSharingConfig) (SpaceSharingResult, error) {

	var res SpaceSharingResult
	if cfg.Steps <= 0 {
		return res, fmt.Errorf("insitu: steps must be positive")
	}
	if cfg.Mem != nil {
		alloc, err := cfg.Mem.Alloc("simulation", s.MemoryBytes())
		if err != nil {
			return res, err
		}
		defer alloc.Free()
	}

	start := time.Now()
	simErr := make(chan error, 1)
	go func() {
		busyStart := time.Now()
		// finish must record the busy time before signalling completion:
		// the main goroutine reads res.SimBusy right after the receive.
		finish := func(err error) {
			res.SimBusy = time.Since(busyStart)
			simErr <- err
		}
		for i := 0; i < cfg.Steps; i++ {
			stepStart := time.Now()
			if err := s.Step(); err != nil {
				closeFeed()
				finish(fmt.Errorf("insitu: simulation step %d: %w", i, err))
				return
			}
			stepSpan("insitu.space", "sim step", i, stepStart)
			if err := feed(s.Data()); err != nil {
				finish(fmt.Errorf("insitu: feed at step %d: %w", i, err))
				return
			}
		}
		closeFeed()
		finish(nil)
	}()

	busyStart := time.Now()
	var consumeErr error
	for i := 0; i < cfg.Steps; i++ {
		stepStart := time.Now()
		if err := consume(); err != nil {
			consumeErr = fmt.Errorf("insitu: analytics at step %d: %w", i, err)
			break
		}
		stepSpan("insitu.space", "analytics step", i, stepStart)
		metStepSpace.Observe(time.Since(stepStart).Seconds())
	}
	res.AnalyticsBusy = time.Since(busyStart)
	if err := <-simErr; err != nil {
		return res, err
	}
	res.Wall = time.Since(start)
	return res, consumeErr
}

// DiskModel reproduces the I/O cost structure of the offline pipeline: data
// really moves through files (exercising the serialization path), and the
// charged time is the larger of the measured time and the modeled
// bytes/bandwidth time, so a fast laptop SSD still exhibits HPC-scale I/O
// ratios.
type DiskModel struct {
	// Dir is the spool directory.
	Dir string
	// BytesPerSec is the modeled storage bandwidth; zero disables the model
	// (measured time only).
	BytesPerSec float64
}

// OfflineResult reports the offline pipeline's cost breakdown.
type OfflineResult struct {
	// Sim is the total simulation time.
	Sim time.Duration
	// Write and Read are the charged I/O times (max of measured, modeled).
	Write, Read time.Duration
	// Analytics is the total analysis time.
	Analytics time.Duration
	// Bytes is the total volume spooled.
	Bytes int64
}

// Total is the end-to-end offline cost.
func (r OfflineResult) Total() time.Duration { return r.Sim + r.Write + r.Read + r.Analytics }

// Offline runs the store-first-analyze-after pipeline: simulate all steps,
// spooling each output to disk, then read every step back and analyze it.
func Offline(s sim.Simulation, analyze AnalyzeFn, steps int, disk DiskModel) (OfflineResult, error) {
	var res OfflineResult
	if steps <= 0 {
		return res, fmt.Errorf("insitu: steps must be positive")
	}
	dir := disk.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "smart-offline-*")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dir)
	}

	charge := func(measured time.Duration, bytes int64) time.Duration {
		if disk.BytesPerSec <= 0 {
			return measured
		}
		modeled := time.Duration(float64(bytes) / disk.BytesPerSec * float64(time.Second))
		return time.Duration(math.Max(float64(measured), float64(modeled)))
	}

	// stepCost accumulates each time-step's charged end-to-end cost across
	// both pipeline phases, observed into the mode="offline" histogram once
	// the step has been analyzed.
	stepCost := make([]time.Duration, steps)

	// Phase 1: simulate and spool.
	for i := 0; i < steps; i++ {
		start := time.Now()
		if err := s.Step(); err != nil {
			return res, fmt.Errorf("insitu: simulation step %d: %w", i, err)
		}
		d := time.Since(start)
		res.Sim += d
		stepCost[i] += d
		stepSpan("insitu.offline", "sim step", i, start)

		start = time.Now()
		n, err := writeStep(stepPath(dir, i), s.Data())
		if err != nil {
			return res, err
		}
		d = charge(time.Since(start), n)
		res.Write += d
		stepCost[i] += d
		res.Bytes += n
		stepSpan("insitu.offline", "spool write", i, start)
	}

	// Phase 2: load and analyze.
	for i := 0; i < steps; i++ {
		start := time.Now()
		data, n, err := readStep(stepPath(dir, i))
		if err != nil {
			return res, err
		}
		d := charge(time.Since(start), n)
		res.Read += d
		stepCost[i] += d
		stepSpan("insitu.offline", "spool read", i, start)

		start = time.Now()
		if err := analyze(data); err != nil {
			return res, fmt.Errorf("insitu: analytics at step %d: %w", i, err)
		}
		d = time.Since(start)
		res.Analytics += d
		stepCost[i] += d
		stepSpan("insitu.offline", "analytics step", i, start)
		metStepOffline.Observe(stepCost[i].Seconds())
	}
	return res, nil
}

func stepPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("step-%06d.bin", i))
}

// writeStep spools one partition as little-endian float64s.
func writeStep(path string, data []float64) (int64, error) {
	buf := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return 0, fmt.Errorf("insitu: spool write: %w", err)
	}
	return int64(len(buf)), nil
}

// readStep loads one spooled partition.
func readStep(path string) ([]float64, int64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("insitu: spool read: %w", err)
	}
	if len(buf)%8 != 0 {
		return nil, 0, fmt.Errorf("insitu: corrupt spool file %s", path)
	}
	data := make([]float64, len(buf)/8)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return data, int64(len(buf)), nil
}
