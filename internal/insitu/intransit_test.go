package insitu

import (
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/sim"
)

const (
	itSims    = 4
	itStaging = 2
	itSteps   = 3
	itBuckets = 10
)

// directHistogram computes the expected accumulated histogram by running
// the same simulations in-process.
func directHistogram(t *testing.T) []int64 {
	t.Helper()
	want := make([]int64, itBuckets)
	for r := 0; r < itSims; r++ {
		em := newEmu(t, r)
		for i := 0; i < itSteps; i++ {
			em.Step()
			for _, v := range em.Data() {
				k := int(v / 10)
				if k < 0 {
					k = 0
				}
				if k >= itBuckets {
					k = itBuckets - 1
				}
				want[k]++
			}
		}
	}
	return want
}

func newEmu(t *testing.T, rank int) *sim.Emulator {
	t.Helper()
	em, err := sim.NewEmulator(sim.EmulatorConfig{StepElems: 5000, Mean: 50, StdDev: 20, Seed: uint64(rank + 1)})
	if err != nil {
		t.Fatal(err)
	}
	return em
}

func histArgs(comm *mpi.Comm) core.SchedArgs {
	return core.SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1, Comm: comm}
}

func TestInTransitHistogramMatchesDirect(t *testing.T) {
	want := directHistogram(t)

	world := mpi.NewWorld(itSims + itStaging)
	assign, err := AssignStaging(itSims, itStaging)
	if err != nil {
		t.Fatal(err)
	}
	stagingRanks := []int{itSims, itSims + 1}

	results := make([][]int64, itStaging)
	var wg sync.WaitGroup
	for rank := 0; rank < itSims+itStaging; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := world[rank]
			defer c.Close()
			if rank < itSims {
				staging := stagingRanks[rank%itStaging]
				if err := InTransitSim(c, staging, newEmu(t, rank), itSteps); err != nil {
					t.Errorf("sim rank %d: %v", rank, err)
				}
				return
			}
			// Staging rank: a per-partition scheduler reduces each shipped
			// step; an accumulator (whose communicator is the staging
			// sub-communicator) merges the per-step maps and performs the
			// final cross-staging combination.
			sub, err := c.SubComm(stagingRanks, 0)
			if err != nil {
				t.Errorf("staging %d subcomm: %v", rank, err)
				return
			}
			app := analytics.NewHistogram(0, 100, itBuckets)
			step := core.MustNewScheduler[float64, int64](app, histArgs(nil))
			acc := core.MustNewScheduler[float64, int64](app, histArgs(sub))

			mySims := assign[rank-itSims]
			err = InTransitStaging(c, mySims, itSteps, func(_ int, data []float64) error {
				step.ResetCombinationMap()
				if err := step.Run(data, nil); err != nil {
					return err
				}
				acc.MergeCombinationMap(step.CombinationMap())
				return nil
			})
			if err != nil {
				t.Errorf("staging %d: %v", rank, err)
				return
			}
			out := make([]int64, itBuckets)
			if err := acc.GlobalCombine(out); err != nil {
				t.Errorf("staging %d final combine: %v", rank, err)
				return
			}
			results[rank-itSims] = out
		}()
	}
	wg.Wait()

	for s, out := range results {
		for b := range want {
			if out[b] != want[b] {
				t.Fatalf("staging %d bucket %d = %d, want %d", s, b, out[b], want[b])
			}
		}
	}
}

func TestHybridHistogramMatchesDirect(t *testing.T) {
	want := directHistogram(t)

	world := mpi.NewWorld(itSims + itStaging)
	assign, err := AssignStaging(itSims, itStaging)
	if err != nil {
		t.Fatal(err)
	}
	stagingRanks := []int{itSims, itSims + 1}

	results := make([][]int64, itStaging)
	shipped := make([]int64, itSims) // bytes shipped per sim rank
	var wg sync.WaitGroup
	for rank := 0; rank < itSims+itStaging; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := world[rank]
			defer c.Close()
			app := analytics.NewHistogram(0, 100, itBuckets)
			if rank < itSims {
				// Simulation rank: in-situ reduction + local combination,
				// ship only the encoded combination map.
				sched := core.MustNewScheduler[float64, int64](app, histArgs(nil))
				staging := stagingRanks[rank%itStaging]
				err := HybridSim(c, staging, newEmu(t, rank), itSteps, func(data []float64) ([]byte, error) {
					sched.ResetCombinationMap()
					if err := sched.Run(data, nil); err != nil {
						return nil, err
					}
					buf, err := sched.EncodeCombinationMap()
					if err == nil {
						shipped[rank] += int64(len(buf))
					}
					return buf, err
				})
				if err != nil {
					t.Errorf("hybrid sim %d: %v", rank, err)
				}
				return
			}
			// Staging rank: merge shipped maps, then combine across the
			// staging sub-communicator.
			sub, err := c.SubComm(stagingRanks, 1)
			if err != nil {
				t.Errorf("staging subcomm: %v", err)
				return
			}
			acc := core.MustNewScheduler[float64, int64](app, histArgs(sub))
			mySims := assign[rank-itSims]
			err = HybridStaging(c, mySims, itSteps, func(encoded [][]byte) error {
				for _, buf := range encoded {
					if err := acc.MergeEncodedCombinationMap(buf); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Errorf("hybrid staging %d: %v", rank, err)
				return
			}
			out := make([]int64, itBuckets)
			if err := acc.GlobalCombine(out); err != nil {
				t.Errorf("final combine: %v", err)
				return
			}
			results[rank-itSims] = out
		}()
	}
	wg.Wait()

	for s, out := range results {
		for b := range want {
			if out[b] != want[b] {
				t.Fatalf("staging %d bucket %d = %d, want %d", s, b, out[b], want[b])
			}
		}
	}
	// The hybrid mode's selling point: shipped data is a map of bucket
	// counts, a small fraction of the raw time-steps.
	rawBytes := int64(5000 * 8 * itSteps)
	for r, b := range shipped {
		if b == 0 || b > rawBytes/10 {
			t.Errorf("sim %d shipped %d bytes; want small fraction of raw %d", r, b, rawBytes)
		}
	}
}

func TestAssignStaging(t *testing.T) {
	assign, err := AssignStaging(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 2 || len(assign[0]) != 3 || len(assign[1]) != 2 {
		t.Fatalf("assignment %v", assign)
	}
	if _, err := AssignStaging(0, 1); err == nil {
		t.Error("zero sims accepted")
	}
	if _, err := AssignStaging(1, 0); err == nil {
		t.Error("zero staging accepted")
	}
}

func TestInTransitValidation(t *testing.T) {
	world := mpi.NewWorld(2)
	defer world[0].Close()
	defer world[1].Close()
	em, _ := sim.NewEmulator(sim.EmulatorConfig{StepElems: 8})
	if err := InTransitSim(world[0], 1, em, 0); err == nil {
		t.Error("zero steps accepted")
	}
	if err := InTransitStaging(world[1], nil, 1, nil); err == nil {
		t.Error("empty sim list accepted")
	}
	if err := HybridSim(world[0], 1, em, 0, nil); err == nil {
		t.Error("zero steps accepted")
	}
	if err := HybridStaging(world[1], []int{0}, 0, nil); err == nil {
		t.Error("zero steps accepted")
	}
}
