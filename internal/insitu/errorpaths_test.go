package insitu

import (
	"errors"
	"strings"
	"testing"

	"github.com/scipioneer/smart/internal/mpi"
)

// flakySim fails Step after a configurable number of successes.
type flakySim struct {
	data     []float64
	failAt   int
	stepsRun int
}

var errSim = errors.New("injected simulation failure")

func (f *flakySim) Step() error {
	if f.stepsRun == f.failAt {
		return errSim
	}
	f.stepsRun++
	return nil
}
func (f *flakySim) Data() []float64    { return f.data }
func (f *flakySim) StepBytes() int64   { return int64(len(f.data)) * 8 }
func (f *flakySim) MemoryBytes() int64 { return f.StepBytes() * 2 }

func TestTimeSharingSimError(t *testing.T) {
	s := &flakySim{data: make([]float64, 16), failAt: 2}
	timings, err := TimeSharing(s, func([]float64) error { return nil }, TimeSharingConfig{Steps: 5})
	if !errors.Is(err, errSim) {
		t.Fatalf("error not propagated: %v", err)
	}
	if len(timings) != 2 {
		t.Fatalf("partial timings %d, want 2", len(timings))
	}
}

func TestSpaceSharingSimError(t *testing.T) {
	s := &flakySim{data: make([]float64, 16), failAt: 1}
	fed := 0
	_, err := SpaceSharing(s,
		func([]float64) error { fed++; return nil },
		func() error { return nil },
		func() {},
		SpaceSharingConfig{Steps: 4})
	if !errors.Is(err, errSim) {
		t.Fatalf("sim error not propagated: %v", err)
	}
	if fed != 1 {
		t.Fatalf("fed %d steps before failure, want 1", fed)
	}
}

func TestSpaceSharingFeedError(t *testing.T) {
	boom := errors.New("feed boom")
	s := &flakySim{data: make([]float64, 16), failAt: 99}
	_, err := SpaceSharing(s,
		func([]float64) error { return boom },
		func() error { return nil },
		func() {},
		SpaceSharingConfig{Steps: 3})
	if !errors.Is(err, boom) {
		t.Fatalf("feed error not propagated: %v", err)
	}
}

func TestSpaceSharingConsumeError(t *testing.T) {
	boom := errors.New("consume boom")
	s := &flakySim{data: make([]float64, 16), failAt: 99}
	_, err := SpaceSharing(s,
		func([]float64) error { return nil },
		func() error { return boom },
		func() {},
		SpaceSharingConfig{Steps: 3})
	if !errors.Is(err, boom) {
		t.Fatalf("consume error not propagated: %v", err)
	}
}

func TestHybridSimErrors(t *testing.T) {
	world := mpi.NewWorld(2)
	defer world[0].Close()
	defer world[1].Close()

	// Simulation failure.
	s := &flakySim{data: make([]float64, 8), failAt: 0}
	err := HybridSim(world[0], 1, s, 2, func([]float64) ([]byte, error) { return nil, nil })
	if !errors.Is(err, errSim) {
		t.Fatalf("sim error not propagated: %v", err)
	}

	// Local reduction failure.
	boom := errors.New("reduce boom")
	s2 := &flakySim{data: make([]float64, 8), failAt: 99}
	err = HybridSim(world[0], 1, s2, 2, func([]float64) ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "local reduction") {
		t.Fatalf("reduce error not propagated with context: %v", err)
	}
}

func TestInTransitSimError(t *testing.T) {
	world := mpi.NewWorld(2)
	defer world[0].Close()
	defer world[1].Close()
	s := &flakySim{data: make([]float64, 8), failAt: 1}
	err := InTransitSim(world[0], 1, s, 3)
	if !errors.Is(err, errSim) {
		t.Fatalf("sim error not propagated: %v", err)
	}
}

func TestHybridStagingMergeError(t *testing.T) {
	world := mpi.NewWorld(2)
	defer world[0].Close()
	defer world[1].Close()
	done := make(chan error, 1)
	go func() {
		s := &flakySim{data: make([]float64, 8), failAt: 99}
		done <- HybridSim(world[0], 1, s, 1, func([]float64) ([]byte, error) {
			return []byte("map"), nil
		})
	}()
	boom := errors.New("merge boom")
	err := HybridStaging(world[1], []int{0}, 1, func([][]byte) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("merge error not propagated: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("sim side: %v", err)
	}
}
