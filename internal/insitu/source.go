package insitu

import (
	"context"

	"github.com/scipioneer/smart/internal/sim"
	"github.com/scipioneer/smart/internal/stream"
)

// StreamSourceConfig configures a time-sharing step loop exposed as a
// stream source.
type StreamSourceConfig struct {
	TimeSharingConfig
	// StartStep offsets the emitted event times: a resumed driver that
	// already consumed k steps runs the simulation forward to k elsewhere
	// and emits its remaining steps as events k, k+1, … so the stream's
	// event-time axis is continuous across the restart.
	StartStep int
}

// StreamSource exposes the time-sharing driver as a stream.Source: every
// simulation step becomes one event whose Time is the step index and whose
// Data is a copy of the step's output partition. The copy is mandatory —
// the simulation's buffer is reused in place each step, while the streaming
// layer buffers events by reference until their windows fire. Memory
// charging, the Figure 9 copy baseline, and per-step spans behave exactly
// as in TimeSharingContext; cancellation stops at the next step boundary
// and surfaces from Feed, leaving the pipeline's open windows intact.
func StreamSource(s sim.Simulation, cfg StreamSourceConfig) stream.Source {
	return stream.SourceFunc(func(ctx context.Context, push func(stream.Event) error) error {
		step := cfg.StartStep
		_, err := TimeSharingContext(ctx, s, func(data []float64) error {
			ev := stream.Event{Time: int64(step), Data: append([]float64(nil), data...)}
			step++
			return push(ev)
		}, cfg.TimeSharingConfig)
		return err
	})
}
