package ringbuf

import (
	"testing"
	"testing/quick"
)

// TestModelEquivalence drives the buffer with a random operation sequence
// and checks it against a plain slice model: same values, same order, same
// occupancy, at every step.
func TestModelEquivalence(t *testing.T) {
	f := func(ops []byte, capRaw uint8) bool {
		capacity := int(capRaw%7) + 1
		b := New[int](capacity)
		var model []int
		next := 0
		for _, op := range ops {
			if op%2 == 0 {
				// Put, but only when it would not block.
				if len(model) == capacity {
					continue
				}
				if err := b.Put(next); err != nil {
					return false
				}
				model = append(model, next)
				next++
			} else {
				if len(model) == 0 {
					continue
				}
				v, err := b.Get()
				if err != nil || v != model[0] {
					return false
				}
				model = model[1:]
			}
			if b.Len() != len(model) {
				return false
			}
		}
		// Drain and compare the tail.
		b.Close()
		for _, want := range model {
			v, err := b.Get()
			if err != nil || v != want {
				return false
			}
		}
		_, err := b.Get()
		return err == ErrClosed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
