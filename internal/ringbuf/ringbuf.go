// Package ringbuf implements the bounded circular buffer Smart uses in
// space sharing mode. Each cell caches one time-step's output; the
// simulation task is the producer and the analytics task is the consumer.
// When the buffer is full the producer blocks until a cell frees up, exactly
// as described in the paper's Section 3.2.
//
// Every buffer reports into the process-wide obs registry: a global
// occupancy gauge (its peak proves the buffer was exercised even after a
// full drain), produced/consumed counters, and producer/consumer blocked
// time — the backpressure signals Figure 10's space-sharing analysis needs.
package ringbuf

import (
	"errors"
	"sync"
	"time"

	"github.com/scipioneer/smart/internal/obs"
)

// ErrClosed is returned once the buffer has been closed and drained.
var ErrClosed = errors.New("ringbuf: closed")

// Package-wide metrics, aggregated over all buffers in the process. The
// occupancy gauge is the net cell count across buffers; its Peak is the
// high-water mark.
var (
	metOccupancy       = obs.DefaultRegistry().Gauge("smart_ringbuf_occupancy")
	metProduced        = obs.DefaultRegistry().Counter("smart_ringbuf_produced_total")
	metConsumed        = obs.DefaultRegistry().Counter("smart_ringbuf_consumed_total")
	metProducerBlocked = obs.DefaultRegistry().Counter("smart_ringbuf_producer_blocked_ns_total")
	metConsumerBlocked = obs.DefaultRegistry().Counter("smart_ringbuf_consumer_blocked_ns_total")
)

// Buffer is a bounded blocking FIFO of time-step payloads. The element type
// is generic so the buffer can carry typed array partitions without copying
// through interface boxes.
type Buffer[T any] struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	cells    []T
	head     int // index of the oldest element
	count    int
	closed   bool

	// stats
	produced        int
	consumed        int
	producerWait    int // times the producer blocked on a full buffer
	producerBlocked time.Duration
	consumerBlocked time.Duration
}

// New creates a buffer with the given number of cells. It panics on a
// non-positive capacity, which would deadlock the producer.
func New[T any](capacity int) *Buffer[T] {
	if capacity <= 0 {
		panic("ringbuf: capacity must be positive")
	}
	b := &Buffer[T]{cells: make([]T, capacity)}
	b.notFull = sync.NewCond(&b.mu)
	b.notEmpty = sync.NewCond(&b.mu)
	return b
}

// Cap returns the number of cells.
func (b *Buffer[T]) Cap() int { return len(b.cells) }

// Len returns the number of occupied cells.
func (b *Buffer[T]) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// Put appends v, blocking while the buffer is full. It returns ErrClosed if
// the buffer was closed before space became available.
func (b *Buffer[T]) Put(v T) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.count == len(b.cells) && !b.closed {
		b.producerWait++
		start := time.Now()
		b.notFull.Wait()
		d := time.Since(start)
		b.producerBlocked += d
		metProducerBlocked.Add(int64(d))
	}
	if b.closed {
		return ErrClosed
	}
	b.cells[(b.head+b.count)%len(b.cells)] = v
	b.count++
	b.produced++
	metProduced.Inc()
	metOccupancy.Add(1)
	b.notEmpty.Signal()
	return nil
}

// Get removes and returns the oldest element, blocking while the buffer is
// empty. Once the buffer is closed and drained, Get returns ErrClosed.
func (b *Buffer[T]) Get() (T, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.count == 0 && !b.closed {
		start := time.Now()
		b.notEmpty.Wait()
		d := time.Since(start)
		b.consumerBlocked += d
		metConsumerBlocked.Add(int64(d))
	}
	var zero T
	if b.count == 0 {
		return zero, ErrClosed
	}
	v := b.cells[b.head]
	b.cells[b.head] = zero // release the cell's reference
	b.head = (b.head + 1) % len(b.cells)
	b.count--
	b.consumed++
	metConsumed.Inc()
	metOccupancy.Add(-1)
	b.notFull.Signal()
	return v, nil
}

// Close marks the buffer as closed. Blocked producers fail immediately;
// consumers drain remaining elements and then receive ErrClosed.
func (b *Buffer[T]) Close() {
	b.mu.Lock()
	b.closed = true
	b.notFull.Broadcast()
	b.notEmpty.Broadcast()
	b.mu.Unlock()
}

// Stats reports the number of elements produced and consumed and how many
// times the producer blocked on a full buffer (a backpressure signal used by
// the space-sharing experiments).
func (b *Buffer[T]) Stats() (produced, consumed, producerWaits int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.produced, b.consumed, b.producerWait
}

// BlockedTime reports how long the producer has cumulatively blocked on a
// full buffer and the consumer on an empty one.
func (b *Buffer[T]) BlockedTime() (producer, consumer time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.producerBlocked, b.consumerBlocked
}
