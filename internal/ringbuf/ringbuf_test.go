package ringbuf

import (
	"sync"
	"testing"
	"time"
)

func TestFIFOOrder(t *testing.T) {
	b := New[int](4)
	for i := 0; i < 4; i++ {
		if err := b.Put(i); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < 4; i++ {
		v, err := b.Get()
		if err != nil || v != i {
			t.Fatalf("get %d = %d, %v", i, v, err)
		}
	}
}

func TestWrapAround(t *testing.T) {
	b := New[int](3)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			b.Put(round*3 + i)
		}
		for i := 0; i < 3; i++ {
			v, _ := b.Get()
			if v != round*3+i {
				t.Fatalf("round %d: got %d, want %d", round, v, round*3+i)
			}
		}
	}
}

func TestProducerBlocksWhenFull(t *testing.T) {
	b := New[int](2)
	b.Put(1)
	b.Put(2)
	done := make(chan struct{})
	go func() {
		b.Put(3) // must block until a Get frees a cell
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Put on full buffer did not block")
	case <-time.After(20 * time.Millisecond):
	}
	if v, _ := b.Get(); v != 1 {
		t.Fatalf("got %d, want 1", v)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("blocked Put never completed")
	}
	_, _, waits := b.Stats()
	if waits == 0 {
		t.Error("producer wait not recorded")
	}
}

func TestConsumerBlocksWhenEmpty(t *testing.T) {
	b := New[string](1)
	got := make(chan string, 1)
	go func() {
		v, _ := b.Get()
		got <- v
	}()
	select {
	case <-got:
		t.Fatal("Get on empty buffer did not block")
	case <-time.After(20 * time.Millisecond):
	}
	b.Put("step")
	select {
	case v := <-got:
		if v != "step" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked Get never completed")
	}
}

func TestCloseDrains(t *testing.T) {
	b := New[int](4)
	b.Put(10)
	b.Put(11)
	b.Close()
	if v, err := b.Get(); err != nil || v != 10 {
		t.Fatalf("drain 1: %d %v", v, err)
	}
	if v, err := b.Get(); err != nil || v != 11 {
		t.Fatalf("drain 2: %d %v", v, err)
	}
	if _, err := b.Get(); err != ErrClosed {
		t.Fatalf("after drain: %v, want ErrClosed", err)
	}
	if err := b.Put(12); err != ErrClosed {
		t.Fatalf("put after close: %v, want ErrClosed", err)
	}
}

func TestCloseUnblocksProducer(t *testing.T) {
	b := New[int](1)
	b.Put(1)
	errc := make(chan error, 1)
	go func() {
		errc <- b.Put(2)
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("unblocked put: %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock producer")
	}
}

func TestConcurrentProducerConsumer(t *testing.T) {
	const n = 10000
	b := New[int](8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := b.Put(i); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
		}
		b.Close()
	}()
	sum := 0
	count := 0
	for {
		v, err := b.Get()
		if err != nil {
			break
		}
		sum += v
		count++
	}
	wg.Wait()
	if count != n || sum != n*(n-1)/2 {
		t.Fatalf("consumed %d items, sum %d", count, sum)
	}
	produced, consumed, _ := b.Stats()
	if produced != n || consumed != n {
		t.Fatalf("stats: produced %d consumed %d", produced, consumed)
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int](0)
}

func TestLenCap(t *testing.T) {
	b := New[int](5)
	if b.Cap() != 5 || b.Len() != 0 {
		t.Fatalf("cap %d len %d", b.Cap(), b.Len())
	}
	b.Put(1)
	b.Put(2)
	if b.Len() != 2 {
		t.Fatalf("len %d, want 2", b.Len())
	}
}
