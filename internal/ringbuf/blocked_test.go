package ringbuf

import (
	"testing"
	"time"
)

// TestProducerBlockedTime is the backpressure regression test: with the
// buffer at capacity, a Put must actually block (non-zero wait count and
// blocked duration) until the consumer frees a cell.
func TestProducerBlockedTime(t *testing.T) {
	b := New[int](1)
	if err := b.Put(1); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- b.Put(2) }() // blocks: buffer is full

	const hold = 30 * time.Millisecond
	time.Sleep(hold)
	if v, err := b.Get(); err != nil || v != 1 {
		t.Fatalf("Get = %d, %v", v, err)
	}
	if err := <-done; err != nil {
		t.Fatalf("blocked Put failed: %v", err)
	}

	_, _, waits := b.Stats()
	if waits == 0 {
		t.Fatal("producer never blocked on a full buffer")
	}
	producer, _ := b.BlockedTime()
	if producer < hold/2 {
		t.Fatalf("producer blocked time = %v, want >= %v", producer, hold/2)
	}
	if v, err := b.Get(); err != nil || v != 2 {
		t.Fatalf("second Get = %d, %v", v, err)
	}
}

// TestConsumerBlockedTime mirrors the producer test on the empty side.
func TestConsumerBlockedTime(t *testing.T) {
	b := New[int](2)
	done := make(chan int, 1)
	go func() {
		v, err := b.Get() // blocks: buffer is empty
		if err != nil {
			t.Error(err)
		}
		done <- v
	}()

	const hold = 30 * time.Millisecond
	time.Sleep(hold)
	if err := b.Put(7); err != nil {
		t.Fatal(err)
	}
	if v := <-done; v != 7 {
		t.Fatalf("Get = %d, want 7", v)
	}
	_, consumer := b.BlockedTime()
	if consumer < hold/2 {
		t.Fatalf("consumer blocked time = %v, want >= %v", consumer, hold/2)
	}
}

// TestCloseTerminatedWaitAccounted closes the buffer under a blocked
// producer and checks the ended wait is still charged to blocked time.
func TestCloseTerminatedWaitAccounted(t *testing.T) {
	b := New[int](1)
	if err := b.Put(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- b.Put(2) }()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("blocked Put after Close = %v, want ErrClosed", err)
	}
	if producer, _ := b.BlockedTime(); producer == 0 {
		t.Fatal("blocked time not recorded for a Close-terminated wait")
	}
}
