// Package memmodel provides virtual per-node memory accounting for the
// reproduction. The paper's Figures 9 and 11 hinge on memory behaviour the
// host machine cannot exhibit at paper scale (12 GB nodes, OOM crashes at
// 2 GB time-steps): an extra copy of the simulation output, or a reduction
// map holding one object per input element, pushes a node past its physical
// capacity. This package models that: experiments register their
// allocations against a virtual capacity, observe a thrashing slowdown
// factor near the capacity, and receive an OOM error above it.
package memmodel

import (
	"fmt"
	"sort"
	"sync"

	"github.com/scipioneer/smart/internal/obs"
)

// Process-wide metrics, aggregated over all virtual nodes: the used-bytes
// gauge (its peak is the global high-water mark), pressure-onset events
// (crossings of a node's high-water fraction, the point where the thrash
// ramp starts), and virtual OOM failures.
var (
	metUsed     = obs.DefaultRegistry().Gauge("smart_mem_used_bytes")
	metPressure = obs.DefaultRegistry().Counter("smart_mem_pressure_events_total")
	metOOM      = obs.DefaultRegistry().Counter("smart_mem_oom_total")
)

// Default pressure-model parameters. Above HighWater×capacity the node is
// considered to be paging and compute slows down linearly up to
// ThrashFactor× at 100% utilization — a deliberately simple stand-in for the
// "processing time increases substantially" behaviour in Section 5.5.
const (
	DefaultHighWater    = 0.85
	DefaultThrashFactor = 6.0
)

// OOMError reports a virtual allocation failure.
type OOMError struct {
	Label    string
	Want     int64
	Used     int64
	Capacity int64
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("memmodel: out of memory allocating %d bytes for %q (%d/%d used)",
		e.Want, e.Label, e.Used, e.Capacity)
}

// Node models one compute node's memory.
type Node struct {
	mu           sync.Mutex
	capacity     int64
	highWater    float64
	thrashFactor float64
	used         int64
	peak         int64
	byLabel      map[string]int64
	// pressured marks that used is above highWater×capacity, so the
	// pressure-event counter fires once per excursion, not per allocation.
	pressured bool
}

// account applies a usage delta under the node's lock, maintaining the peak
// and the process-wide gauges/counters.
func (n *Node) account(delta int64) {
	n.used += delta
	metUsed.Add(delta)
	if n.used > n.peak {
		n.peak = n.used
	}
	above := float64(n.used) > n.highWater*float64(n.capacity)
	if above && !n.pressured {
		metPressure.Inc()
	}
	n.pressured = above
}

// NewNode creates a node with the given virtual capacity in bytes and the
// default pressure parameters.
func NewNode(capacity int64) *Node {
	if capacity <= 0 {
		panic("memmodel: capacity must be positive")
	}
	return &Node{
		capacity:     capacity,
		highWater:    DefaultHighWater,
		thrashFactor: DefaultThrashFactor,
		byLabel:      make(map[string]int64),
	}
}

// SetPressureModel overrides the high-water fraction (0 < hw <= 1) and the
// thrash factor (>= 1) of the linear slowdown ramp.
func (n *Node) SetPressureModel(highWater, thrashFactor float64) {
	if highWater <= 0 || highWater > 1 || thrashFactor < 1 {
		panic("memmodel: invalid pressure model")
	}
	n.mu.Lock()
	n.highWater = highWater
	n.thrashFactor = thrashFactor
	n.mu.Unlock()
}

// Allocation is a live virtual allocation; Free returns it to the node.
type Allocation struct {
	node  *Node
	label string
	bytes int64
	freed bool
}

// Alloc reserves bytes against the node's capacity under a human-readable
// label ("simulation", "analytics copy", "reduction map", ...). It fails
// with *OOMError when the reservation would exceed capacity.
func (n *Node) Alloc(label string, bytes int64) (*Allocation, error) {
	if bytes < 0 {
		panic("memmodel: negative allocation")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.used+bytes > n.capacity {
		metOOM.Inc()
		return nil, &OOMError{Label: label, Want: bytes, Used: n.used, Capacity: n.capacity}
	}
	n.account(bytes)
	n.byLabel[label] += bytes
	return &Allocation{node: n, label: label, bytes: bytes}, nil
}

// Free releases the allocation. Freeing twice is a no-op.
func (a *Allocation) Free() {
	if a == nil || a.freed {
		return
	}
	a.freed = true
	n := a.node
	n.mu.Lock()
	n.account(-a.bytes)
	n.byLabel[a.label] -= a.bytes
	if n.byLabel[a.label] == 0 {
		delete(n.byLabel, a.label)
	}
	n.mu.Unlock()
}

// Resize grows or shrinks the allocation in place, failing with *OOMError if
// growth would exceed capacity (the allocation is then left unchanged).
func (a *Allocation) Resize(bytes int64) error {
	if bytes < 0 {
		panic("memmodel: negative allocation")
	}
	if a.freed {
		panic("memmodel: resize after free")
	}
	n := a.node
	n.mu.Lock()
	defer n.mu.Unlock()
	delta := bytes - a.bytes
	if n.used+delta > n.capacity {
		metOOM.Inc()
		return &OOMError{Label: a.label, Want: delta, Used: n.used, Capacity: n.capacity}
	}
	n.account(delta)
	n.byLabel[a.label] += delta
	a.bytes = bytes
	return nil
}

// Bytes returns the allocation's current size.
func (a *Allocation) Bytes() int64 { return a.bytes }

// Used returns the bytes currently reserved on the node.
func (n *Node) Used() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.used
}

// Peak returns the high-water mark of reserved bytes.
func (n *Node) Peak() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.peak
}

// Capacity returns the node's virtual capacity.
func (n *Node) Capacity() int64 { return n.capacity }

// Utilization returns the fraction of capacity currently reserved.
func (n *Node) Utilization() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return float64(n.used) / float64(n.capacity)
}

// Pressured reports whether reserved bytes exceed the high-water fraction —
// the point where the thrash ramp starts. The serving layer uses this as its
// admission signal: a node already paging gains nothing from accepting more
// analytics work, so new jobs are rejected until the excursion ends.
func (n *Node) Pressured() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return float64(n.used) > n.highWater*float64(n.capacity)
}

// SlowdownFactor returns the multiplicative compute slowdown implied by the
// current memory pressure: 1.0 up to the high-water mark, ramping linearly
// to the thrash factor at full capacity.
func (n *Node) SlowdownFactor() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.slowdownAt(n.used)
}

// slowdownAt computes the pressure factor for a hypothetical usage level.
func (n *Node) slowdownAt(used int64) float64 {
	util := float64(used) / float64(n.capacity)
	if util <= n.highWater {
		return 1.0
	}
	frac := (util - n.highWater) / (1 - n.highWater)
	return 1.0 + frac*(n.thrashFactor-1.0)
}

// PeakSlowdown returns the pressure factor at the node's peak usage — the
// factor the replay simulator charges a phase whose transient allocations
// have already been released by the time it samples.
func (n *Node) PeakSlowdown() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.slowdownAt(n.peak)
}

// LabelReport returns "label=bytes" lines sorted by label, for experiment
// logs and the memory-efficiency comparison in Section 5.2.
func (n *Node) LabelReport() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	labels := make([]string, 0, len(n.byLabel))
	for l := range n.byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = fmt.Sprintf("%s=%d", l, n.byLabel[l])
	}
	return out
}
