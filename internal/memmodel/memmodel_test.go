package memmodel

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocFree(t *testing.T) {
	n := NewNode(1000)
	a, err := n.Alloc("sim", 400)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	if n.Used() != 400 {
		t.Fatalf("used %d, want 400", n.Used())
	}
	b, err := n.Alloc("analytics", 600)
	if err != nil {
		t.Fatalf("alloc 2: %v", err)
	}
	if n.Used() != 1000 || n.Peak() != 1000 {
		t.Fatalf("used %d peak %d", n.Used(), n.Peak())
	}
	a.Free()
	b.Free()
	if n.Used() != 0 {
		t.Fatalf("used after free %d", n.Used())
	}
	if n.Peak() != 1000 {
		t.Fatalf("peak lost: %d", n.Peak())
	}
}

func TestOOM(t *testing.T) {
	n := NewNode(100)
	if _, err := n.Alloc("a", 60); err != nil {
		t.Fatal(err)
	}
	_, err := n.Alloc("b", 50)
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("want OOMError, got %v", err)
	}
	if oom.Want != 50 || oom.Used != 60 || oom.Capacity != 100 {
		t.Fatalf("oom fields: %+v", oom)
	}
	if oom.Error() == "" {
		t.Error("empty error string")
	}
	// A failed allocation must not change accounting.
	if n.Used() != 60 {
		t.Fatalf("used changed on failed alloc: %d", n.Used())
	}
}

func TestDoubleFreeNoop(t *testing.T) {
	n := NewNode(100)
	a, _ := n.Alloc("x", 40)
	a.Free()
	a.Free()
	if n.Used() != 0 {
		t.Fatalf("double free corrupted accounting: %d", n.Used())
	}
	var nilAlloc *Allocation
	nilAlloc.Free() // must not panic
}

func TestResize(t *testing.T) {
	n := NewNode(100)
	a, _ := n.Alloc("buf", 30)
	if err := a.Resize(80); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if n.Used() != 80 || a.Bytes() != 80 {
		t.Fatalf("after grow: used %d bytes %d", n.Used(), a.Bytes())
	}
	if err := a.Resize(150); err == nil {
		t.Fatal("grow past capacity succeeded")
	}
	if n.Used() != 80 || a.Bytes() != 80 {
		t.Fatalf("failed grow changed state: used %d bytes %d", n.Used(), a.Bytes())
	}
	if err := a.Resize(10); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if n.Used() != 10 {
		t.Fatalf("after shrink: %d", n.Used())
	}
}

func TestSlowdownFactor(t *testing.T) {
	n := NewNode(1000)
	n.SetPressureModel(0.8, 5)
	if f := n.SlowdownFactor(); f != 1.0 {
		t.Fatalf("empty node slowdown %v", f)
	}
	a, _ := n.Alloc("x", 800)
	if f := n.SlowdownFactor(); f != 1.0 {
		t.Fatalf("at high water slowdown %v, want 1.0", f)
	}
	a.Resize(900) // halfway up the ramp
	if f := n.SlowdownFactor(); f < 2.9 || f > 3.1 {
		t.Fatalf("mid-ramp slowdown %v, want ~3", f)
	}
	a.Resize(1000)
	if f := n.SlowdownFactor(); f != 5.0 {
		t.Fatalf("full slowdown %v, want 5", f)
	}
}

func TestSlowdownMonotone(t *testing.T) {
	f := func(u1, u2 uint16) bool {
		n := NewNode(1 << 16)
		lo, hi := int64(u1), int64(u2)
		if lo > hi {
			lo, hi = hi, lo
		}
		a, err := n.Alloc("x", lo)
		if err != nil {
			return true
		}
		f1 := n.SlowdownFactor()
		if a.Resize(hi) != nil {
			return true
		}
		return n.SlowdownFactor() >= f1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLabelReport(t *testing.T) {
	n := NewNode(1000)
	n.Alloc("sim", 100)
	n.Alloc("analytics", 50)
	n.Alloc("sim", 25)
	got := n.LabelReport()
	want := []string{"analytics=50", "sim=125"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("report %v, want %v", got, want)
	}
}

func TestConcurrentAccounting(t *testing.T) {
	n := NewNode(1 << 30)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a, err := n.Alloc("w", 64)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				a.Free()
			}
		}()
	}
	wg.Wait()
	if n.Used() != 0 {
		t.Fatalf("leaked %d bytes", n.Used())
	}
}

func TestPanics(t *testing.T) {
	assertPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanic("NewNode", func() { NewNode(0) })
	assertPanic("negative alloc", func() { NewNode(10).Alloc("x", -1) })
	assertPanic("bad pressure", func() { NewNode(10).SetPressureModel(0, 1) })
	assertPanic("resize after free", func() {
		n := NewNode(10)
		a, _ := n.Alloc("x", 1)
		a.Free()
		a.Resize(2)
	})
}
