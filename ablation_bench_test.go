// Ablation benchmarks for the design choices DESIGN.md calls out: the
// binomial combination tree versus a flat gather-at-root, and the block
// size of the runtime scheduler. These measure the real code paths (total
// CPU work, which on any machine bounds the wall time).
package smart_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/sim"
)

// runCombineWorld executes one distributed histogram run over `ranks`
// in-process ranks and returns only when every rank finished.
func runCombineWorld(b *testing.B, ranks int, flat bool, data []float64) {
	b.Helper()
	comms := mpi.NewWorld(ranks)
	per := len(data) / ranks
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			app := analytics.NewHistogram(-4, 4, 1200)
			s := core.MustNewScheduler[float64, int64](app, core.SchedArgs{
				NumThreads: 1, ChunkSize: 1, NumIters: 1, Comm: comms[r],
				FlatGlobalCombine: flat,
			})
			if err := s.Run(data[r*per:(r+1)*per], nil); err != nil {
				b.Errorf("rank %d: %v", r, err)
			}
		}()
	}
	wg.Wait()
}

// BenchmarkAblationGlobalCombine compares the binomial combination tree
// against the flat gather-at-root merge across world sizes. The tree's
// advantage grows with rank count: the root's merge work is O(log P)
// instead of O(P).
func BenchmarkAblationGlobalCombine(b *testing.B) {
	em, err := sim.NewEmulator(sim.EmulatorConfig{StepElems: 64 * 1024, Seed: 71})
	if err != nil {
		b.Fatal(err)
	}
	em.Step()
	data := em.Data()
	for _, ranks := range []int{4, 16} {
		for _, flat := range []bool{false, true} {
			name := fmt.Sprintf("ranks=%d/tree", ranks)
			if flat {
				name = fmt.Sprintf("ranks=%d/flat", ranks)
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runCombineWorld(b, ranks, flat, data)
				}
			})
		}
	}
}

// BenchmarkAblationBlockSize sweeps the scheduler's block size: one block
// (0) against cache-sized and tiny blocks, histogram over one partition.
func BenchmarkAblationBlockSize(b *testing.B) {
	em, err := sim.NewEmulator(sim.EmulatorConfig{StepElems: 512 * 1024, Seed: 72})
	if err != nil {
		b.Fatal(err)
	}
	em.Step()
	data := em.Data()
	for _, blockSize := range []int{0, 4 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("block=%d", blockSize), func(b *testing.B) {
			app := analytics.NewHistogram(-4, 4, 100)
			s := core.MustNewScheduler[float64, int64](app, core.SchedArgs{
				NumThreads: 4, ChunkSize: 1, NumIters: 1, BlockSize: blockSize, Sequential: true,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ResetCombinationMap()
				if err := s.Run(data, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEarlyEmission isolates the trigger mechanism's cost and
// benefit: the same moving-average run with and without early emission.
func BenchmarkAblationEarlyEmission(b *testing.B) {
	em, err := sim.NewEmulator(sim.EmulatorConfig{StepElems: 64 * 1024, Seed: 73})
	if err != nil {
		b.Fatal(err)
	}
	em.Step()
	data := em.Data()
	for _, trigger := range []bool{true, false} {
		name := "trigger=on"
		if !trigger {
			name = "trigger=off"
		}
		b.Run(name, func(b *testing.B) {
			out := make([]float64, len(data))
			for i := 0; i < b.N; i++ {
				app := analytics.NewMovingAverage(25, len(data), 0, trigger)
				s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
					NumThreads: 2, ChunkSize: 1, NumIters: 1,
				})
				if err := s.Run2(data, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedulerHotPath measures the per-element overhead of the
// framework against a raw loop — the cost Section 5.3 bounds.
func BenchmarkSchedulerHotPath(b *testing.B) {
	em, err := sim.NewEmulator(sim.EmulatorConfig{StepElems: 256 * 1024, Seed: 74})
	if err != nil {
		b.Fatal(err)
	}
	em.Step()
	data := em.Data()
	b.Run("smart-histogram", func(b *testing.B) {
		app := analytics.NewHistogram(-4, 4, 100)
		s := core.MustNewScheduler[float64, int64](app, core.SchedArgs{
			NumThreads: 1, ChunkSize: 1, NumIters: 1,
		})
		b.SetBytes(int64(len(data) * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.ResetCombinationMap()
			if err := s.Run(data, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("raw-loop", func(b *testing.B) {
		counts := make([]int64, 100)
		b.SetBytes(int64(len(data) * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range counts {
				counts[j] = 0
			}
			for _, v := range data {
				k := int((v + 4) / 0.08)
				if k < 0 {
					k = 0
				}
				if k > 99 {
					k = 99
				}
				counts[k]++
			}
		}
	})
}
