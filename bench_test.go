// Package smart_test hosts the benchmark harness: one testing.B benchmark
// per table/figure of the paper's evaluation (Section 5). Each benchmark
// regenerates its figure at Small scale per iteration and reports the
// figure's headline ratio as a custom metric; `go run ./cmd/smartbench`
// produces the full-scale tables recorded in EXPERIMENTS.md.
package smart_test

import (
	"testing"

	"github.com/scipioneer/smart/internal/harness"
)

// headline extracts a comparative metric from two series at an x value.
func ratioAt(r *harness.Result, slow, fast string, x float64) float64 {
	s := r.SeriesByName(slow)
	f := r.SeriesByName(fast)
	if s == nil || f == nil {
		return 0
	}
	sv, ok1 := s.YAt(x)
	fv, ok2 := f.YAt(x)
	if !ok1 || !ok2 || fv == 0 {
		return 0
	}
	return sv / fv
}

// BenchmarkFig1_InsituVsOffline regenerates Figure 1: in-situ vs offline
// k-means on Heat3D across iteration counts.
func BenchmarkFig1_InsituVsOffline(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig1(harness.Small)
		if err != nil {
			b.Fatal(err)
		}
		speedup = ratioAt(res, "offline total", "in-situ total", 1)
	}
	b.ReportMetric(speedup, "insitu-speedup-x")
}

// BenchmarkFig5_SmartVsConventionalMR regenerates Figures 5a-5c: Smart vs
// the conventional-MapReduce baseline on LR, k-means, and histogram.
func BenchmarkFig5_SmartVsConventionalMR(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		results, err := harness.Fig5(harness.Small)
		if err != nil {
			b.Fatal(err)
		}
		gap = ratioAt(results[2], "conventional MR", "Smart", 8)
	}
	b.ReportMetric(gap, "histogram-gap-x")
}

// BenchmarkFig5Mem_Footprint regenerates the Section 5.2 memory comparison.
func BenchmarkFig5Mem_Footprint(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig5Mem(harness.Small)
		if err != nil {
			b.Fatal(err)
		}
		ratio = ratioAt(res, "conventional MR", "Smart", 2)
	}
	b.ReportMetric(ratio, "footprint-ratio-x")
}

// BenchmarkFig6_LowLevel regenerates Figure 6: Smart vs hand-coded
// MPI/OpenMP-style k-means and logistic regression on 8-64 modeled nodes.
func BenchmarkFig6_LowLevel(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		results, err := harness.Fig6(harness.Small)
		if err != nil {
			b.Fatal(err)
		}
		overhead = ratioAt(results[1], "Smart", "hand-coded", 8)
	}
	b.ReportMetric(overhead, "logreg-smart/handcoded")
}

// BenchmarkFig7_NodeScaling regenerates Figure 7: nine applications on
// Heat3D across 4-32 modeled nodes.
func BenchmarkFig7_NodeScaling(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig7(harness.Small)
		if err != nil {
			b.Fatal(err)
		}
		// Strong-scaling efficiency of k-means from 4 to 32 nodes:
		// (T4 * 4) / (T32 * 32).
		if s := res.SeriesByName("k-means"); s != nil {
			t4, ok4 := s.YAt(4)
			t32, ok32 := s.YAt(32)
			if ok4 && ok32 && t32 > 0 {
				eff = t4 * 4 / (t32 * 32)
			}
		}
	}
	b.ReportMetric(eff, "kmeans-efficiency")
}

// BenchmarkFig8_ThreadScaling regenerates Figure 8: nine applications on
// Lulesh across 1-8 threads on 64 modeled nodes.
func BenchmarkFig8_ThreadScaling(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig8(harness.Small)
		if err != nil {
			b.Fatal(err)
		}
		if s := res.SeriesByName("moving median"); s != nil {
			v1, ok1 := s.YAt(1)
			v8, ok8 := s.YAt(8)
			if ok1 && ok8 && v8 > 0 {
				speedup = v1 / v8
			}
		}
	}
	b.ReportMetric(speedup, "median-8thread-speedup-x")
}

// BenchmarkFig9a_ZeroCopy regenerates Figure 9a: zero-copy vs extra-copy
// time sharing, logistic regression on Heat3D.
func BenchmarkFig9a_ZeroCopy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig9a(harness.Small); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9b_ZeroCopy regenerates Figure 9b: zero-copy vs extra-copy
// time sharing, mutual information on Lulesh.
func BenchmarkFig9b_ZeroCopy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig9b(harness.Small); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10_Modes regenerates Figures 10a-10c: time sharing vs space
// sharing schemes on many-core nodes.
func BenchmarkFig10_Modes(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		results, err := harness.Fig10(harness.Small)
		if err != nil {
			b.Fatal(err)
		}
		// Moving median: time sharing (x=1) vs the 30_30 split (x=4).
		ts := results[2].SeriesByName("time sharing")
		ss := results[2].SeriesByName("30_30")
		if ts != nil && ss != nil {
			tsv, ok1 := ts.YAt(1)
			ssv, ok2 := ss.YAt(4)
			if ok1 && ok2 && ssv > 0 {
				gain = tsv / ssv
			}
		}
	}
	b.ReportMetric(gain, "median-ss-gain-x")
}

// BenchmarkFig11a_Trigger regenerates Figure 11a: early emission on/off for
// moving average on Heat3D.
func BenchmarkFig11a_Trigger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig11a(harness.Small); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11b_Trigger regenerates Figure 11b: early emission on/off for
// moving median on Lulesh.
func BenchmarkFig11b_Trigger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig11b(harness.Small); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExt1_Placements regenerates the extension experiment: in-situ vs
// in-transit vs hybrid across interconnect bandwidths.
func BenchmarkExt1_Placements(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.FigExt1(harness.Small); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigSched_Engines regenerates the scheduler figure: static vs
// work-stealing engine on skewed and uniform workloads across thread counts.
// The reported metric is the skewed-workload speedup of stealing over static
// at the highest thread count (≈1 on hosts with fewer cores than threads).
func BenchmarkFigSched_Engines(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := harness.FigSched(harness.Small)
		if err != nil {
			b.Fatal(err)
		}
		speedup = ratioAt(res, "skewed/static", "skewed/stealing", 8)
	}
	b.ReportMetric(speedup, "skewed-steal-speedup-x")
}
