module github.com/scipioneer/smart

go 1.22
