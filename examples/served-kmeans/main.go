// Analytics as a service: an in-process smartd serves typed analytics jobs
// over HTTP while a client submits k-means clustering, watches a moving
// average stream its early-emitted window results live, and cancels a
// long-running job mid-flight — the chunk-granularity cancellation of
// Scheduler.RunContext surfacing as a fast DELETE. The server then drains:
// nothing is in flight here, so it exits immediately, but a busy server
// would checkpoint interrupted jobs for a successor to resume.
//
// Run with: go run ./examples/served-kmeans
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/serve"
	"github.com/scipioneer/smart/internal/serve/client"
)

func main() {
	// An in-process smartd: two workers, a small bounded queue, and a 2 GB
	// virtual memory node gating admission.
	ckdir, err := os.MkdirTemp("", "smartd-ck-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckdir)
	srv := serve.NewServer(serve.Config{
		Workers:       2,
		Queue:         4,
		Mem:           memmodel.NewNode(2 << 30),
		CheckpointDir: ckdir,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	fmt.Printf("smartd serving on %s\n\n", ln.Addr())

	c := client.New("http://" + ln.Addr().String())
	ctx := context.Background()

	// 1. Submit k-means and wait for the clustered centroids.
	fmt.Println("== k-means (submit and wait) ==")
	view, err := c.SubmitWait(ctx, serve.JobSpec{
		App:   "kmeans",
		Steps: 2, Elems: 1 << 16, Seed: 42,
		Params: serve.Params{K: 4, Dims: 4, Iters: 8, Lo: -3, Hi: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s\n", view.ID, view.Status)
	if m, ok := view.Result.(map[string]any); ok {
		fmt.Printf("centroids: %v\n\n", m["centroids"])
	}

	// 2. A moving average with early emission on: window positions finalize
	// and stream as NDJSON records while the job runs; the result record
	// closes the stream.
	fmt.Println("== moving average (streamed early emissions) ==")
	mv, err := c.Submit(ctx, serve.JobSpec{
		App: "movingavg", Elems: 4096, Seed: 7, Params: serve.Params{Window: 25},
	})
	if err != nil {
		log.Fatal(err)
	}
	var emits, spans int
	err = c.Stream(ctx, mv.ID, func(rec serve.StreamRecord) error {
		switch rec.Type {
		case "emit":
			if emits < 3 {
				fmt.Printf("early emission: window[%d] = %v\n", rec.Key, rec.Value)
			}
			emits++
		case "span":
			spans++
		case "result":
			fmt.Printf("stream closed by result record (seq %d)\n", rec.Seq)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d early emissions and %d phase spans streamed\n\n", emits, spans)

	// 3. Cancel a deliberately long job mid-flight: the reduction stops
	// within one chunk per thread, so the DELETE lands fast.
	fmt.Println("== cancellation mid-flight ==")
	long, err := c.Submit(ctx, serve.JobSpec{
		App: "kmeans", Steps: 100_000, Elems: 1 << 16,
		Params: serve.Params{K: 8, Dims: 4, Iters: 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	for {
		v, err := c.Get(ctx, long.ID)
		if err != nil {
			log.Fatal(err)
		}
		if v.Status == serve.StatusRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	if _, err := c.Cancel(ctx, long.ID); err != nil {
		log.Fatal(err)
	}
	for {
		v, err := c.Get(ctx, long.ID)
		if err != nil {
			log.Fatal(err)
		}
		if v.Status == serve.StatusCancelled {
			fmt.Printf("%s cancelled in %v (%s)\n\n", long.ID, time.Since(start).Round(time.Millisecond), v.Error)
			break
		}
		time.Sleep(time.Millisecond)
	}

	// 4. Drain: refuse new work, let in-flight jobs finish (none remain),
	// checkpoint whatever the grace period cuts off.
	srv.Drain(5 * time.Second)
	fmt.Println("server drained; all jobs terminal:")
	for _, v := range srv.List() {
		fmt.Printf("  %s %-12s %s\n", v.ID, v.Status, v.App)
	}
}
