// Space sharing: the simulation and the analytics run concurrently as two
// tasks (paper Listing 2). The simulation task feeds each Lulesh time-step
// into the scheduler's circular buffer; the analytics task drains it. A
// deliberately small buffer shows the backpressure: when the analytics falls
// behind, the simulation blocks on a full buffer.
//
// Run with: go run ./examples/spaceshare-histogram
package main

import (
	"fmt"
	"log"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/insitu"
	"github.com/scipioneer/smart/internal/sim"
)

func main() {
	lul, err := sim.NewLulesh(sim.LuleshConfig{Edge: 24, Threads: 2, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	const buckets = 12
	app := analytics.NewHistogram(0, 3, buckets)
	sched := core.MustNewScheduler[float64, int64](app, core.SchedArgs{
		NumThreads:  2, // analytics cores (the simulation task has its own)
		ChunkSize:   1,
		NumIters:    1,
		BufferCells: 2, // a tiny circular buffer to make backpressure visible
	})

	const steps = 8
	acc := make([]int64, buckets)
	consume := func() error {
		sched.ResetCombinationMap()
		out := make([]int64, buckets)
		if err := sched.RunShared(out); err != nil {
			return err
		}
		for i := range acc {
			acc[i] += out[i]
		}
		return nil
	}

	res, err := insitu.SpaceSharing(lul, sched.Feed, consume, sched.CloseFeed,
		insitu.SpaceSharingConfig{Steps: steps})
	if err != nil {
		log.Fatal(err)
	}

	produced, consumed, waits := sched.BufferStats()
	fmt.Printf("space sharing run: %d steps in %v (sim busy %v, analytics busy %v)\n",
		steps, res.Wall.Round(0), res.SimBusy.Round(0), res.AnalyticsBusy.Round(0))
	fmt.Printf("circular buffer: %d fed, %d consumed, producer blocked %d time(s)\n",
		produced, consumed, waits)
	fmt.Printf("\nenergy histogram accumulated over all %d time-steps:\n", steps)
	var total int64
	for b, c := range acc {
		total += c
		fmt.Printf("  bucket %2d: %7d\n", b, c)
	}
	fmt.Printf("  total elements: %d (= %d steps x %d elements)\n", total, steps, len(lul.Data()))
}
