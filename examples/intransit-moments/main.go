// In-transit and hybrid processing (an extension beyond the paper's core
// contribution; see DESIGN.md §7): four simulation ranks and two dedicated
// staging ranks. In pure in-transit mode each raw time-step crosses the
// network; in hybrid mode the simulation ranks reduce in-situ and ship only
// their combination maps (here: one 48-byte moments object instead of a
// 64 KB time-step). Both modes produce identical global statistics.
//
// Run with: go run ./examples/intransit-moments
package main

import (
	"fmt"
	"log"
	"sync"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/insitu"
	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/sim"
)

const (
	sims    = 4
	staging = 2
	steps   = 5
	elems   = 8192
)

func main() {
	inTransit := runMode(false)
	hybrid := runMode(true)

	fmt.Println("global field statistics over all ranks and time-steps:")
	fmt.Printf("  %-12s %-14s %-14s\n", "", "in-transit", "hybrid")
	fmt.Printf("  %-12s %-14d %-14d\n", "samples", inTransit.N, hybrid.N)
	fmt.Printf("  %-12s %-14.6f %-14.6f\n", "mean", inTransit.Mean, hybrid.Mean)
	fmt.Printf("  %-12s %-14.6f %-14.6f\n", "variance", inTransit.Variance(), hybrid.Variance())
	fmt.Printf("  %-12s %-14.6f %-14.6f\n", "skewness", inTransit.Skewness(), hybrid.Skewness())
	if inTransit.N != hybrid.N || inTransit.Mean != hybrid.Mean {
		log.Fatal("modes disagree")
	}
	fmt.Printf("\nper step and sim rank, in-transit ships %d bytes; hybrid ships ~48\n", elems*8)
}

// runMode executes the six-rank world in one of the two modes and returns
// the global moments from staging rank 0.
func runMode(hybrid bool) *analytics.MomentsObj {
	world := mpi.NewWorld(sims + staging)
	assign, err := insitu.AssignStaging(sims, staging)
	if err != nil {
		log.Fatal(err)
	}
	stagingRanks := []int{sims, sims + 1}

	var result *analytics.MomentsObj
	var wg sync.WaitGroup
	for rank := 0; rank < sims+staging; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := world[rank]
			defer c.Close()
			app := analytics.NewMoments(0, 0)
			if rank < sims {
				em, err := sim.NewEmulator(sim.EmulatorConfig{
					StepElems: elems, Mean: float64(rank), StdDev: 2, Seed: uint64(rank) + 31,
				})
				if err != nil {
					log.Fatal(err)
				}
				target := stagingRanks[rank%staging]
				if hybrid {
					sched := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
						NumThreads: 2, ChunkSize: 1, NumIters: 1,
					})
					err = insitu.HybridSim(c, target, em, steps, func(data []float64) ([]byte, error) {
						sched.ResetCombinationMap()
						if err := sched.Run(data, nil); err != nil {
							return nil, err
						}
						return sched.EncodeCombinationMap()
					})
				} else {
					err = insitu.InTransitSim(c, target, em, steps)
				}
				if err != nil {
					log.Fatalf("sim rank %d: %v", rank, err)
				}
				return
			}

			// Staging rank.
			sub, err := c.SubComm(stagingRanks, boolBand(hybrid))
			if err != nil {
				log.Fatalf("staging subcomm: %v", err)
			}
			acc := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
				NumThreads: 2, ChunkSize: 1, NumIters: 1, Comm: sub,
			})
			mySims := assign[rank-sims]
			if hybrid {
				err = insitu.HybridStaging(c, mySims, steps, func(encoded [][]byte) error {
					for _, buf := range encoded {
						if err := acc.MergeEncodedCombinationMap(buf); err != nil {
							return err
						}
					}
					return nil
				})
			} else {
				step := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
					NumThreads: 2, ChunkSize: 1, NumIters: 1,
				})
				err = insitu.InTransitStaging(c, mySims, steps, func(_ int, data []float64) error {
					step.ResetCombinationMap()
					if err := step.Run(data, nil); err != nil {
						return err
					}
					acc.MergeCombinationMap(step.CombinationMap())
					return nil
				})
			}
			if err != nil {
				log.Fatalf("staging rank %d: %v", rank, err)
			}
			if err := acc.GlobalCombine(nil); err != nil {
				log.Fatalf("final combine: %v", err)
			}
			if rank == sims {
				result = acc.CombinationMap()[0].(*analytics.MomentsObj)
			}
		}()
	}
	wg.Wait()
	return result
}

func boolBand(b bool) int {
	if b {
		return 1
	}
	return 0
}
