// Quickstart: the smallest complete Smart program. A sequential "simulation"
// (the emulator) produces normally-distributed time-steps; a Smart scheduler
// builds an equi-width histogram of each step in-situ, straight from the
// simulation's output buffer, with no intermediate key-value pairs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/sim"
)

func main() {
	// The "simulation": 100k standard-normal values per time-step.
	emulator, err := sim.NewEmulator(sim.EmulatorConfig{StepElems: 100_000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// The analytics: a 20-bucket histogram over [-4, 4). The application
	// implements gen_key / accumulate / merge; the runtime does the rest.
	app := analytics.NewHistogram(-4, 4, 20)
	sched := core.MustNewScheduler[float64, int64](app, core.SchedArgs{
		NumThreads: 4, // split each time-step across 4 threads
		ChunkSize:  1, // one element per unit chunk
		NumIters:   1,
	})

	const steps = 5
	out := make([]int64, 20)
	for step := 0; step < steps; step++ {
		if err := emulator.Step(); err != nil {
			log.Fatal(err)
		}
		// Fresh result per time-step, as in the paper's Listing 1 where a
		// scheduler is constructed per step.
		sched.ResetCombinationMap()
		// Time sharing mode: the scheduler reads the simulation's live
		// buffer directly — no copy is made.
		if err := sched.Run(emulator.Data(), out); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("histogram of the final time-step (100k draws from N(0,1)):")
	for b, count := range out {
		lo := -4 + 0.4*float64(b)
		bar := ""
		for i := int64(0); i < count/400; i++ {
			bar += "#"
		}
		fmt.Printf("  [%+5.1f,%+5.1f) %6d %s\n", lo, lo+0.4, count, bar)
	}
	st := sched.Stats()
	fmt.Printf("\nchunks processed: %d, live reduction objects at peak: %d\n",
		st.ChunksProcessed, st.MaxLiveRedObjs)
	fmt.Println("(the whole analytics state is ~20 reduction objects — no key-value pairs were materialized)")
}
