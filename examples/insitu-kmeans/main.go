// In-situ k-means on a distributed Heat3D simulation — the paper's flagship
// scenario. Four ranks each integrate a slab of a 3-D heat equation
// (exchanging halos over the mpi substrate); after every time-step each rank
// launches the same Smart scheduler from its SPMD region, and the global
// combination converges the centroids across all ranks. Centroids persist
// across time-steps, tracking the cooling field's cluster structure.
//
// Run with: go run ./examples/insitu-kmeans
package main

import (
	"fmt"
	"log"
	"sync"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/insitu"
	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/sim"
)

const (
	ranks = 4
	steps = 6
	k     = 4
	dims  = 4
)

func main() {
	comms := mpi.NewWorld(ranks)
	var wg sync.WaitGroup
	results := make([][][]float64, ranks)
	for rank := 0; rank < ranks; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[rank].Close()
			centroids, err := runRank(comms[rank])
			if err != nil {
				log.Fatalf("rank %d: %v", rank, err)
			}
			results[rank] = centroids
		}()
	}
	wg.Wait()

	fmt.Printf("k-means centroids after %d time-steps (k=%d, %d-dim records):\n", steps, k, dims)
	for c, row := range results[0] {
		fmt.Printf("  cluster %d: %.3f\n", c, row)
	}
	// Every rank holds the same global result after combination.
	for r := 1; r < ranks; r++ {
		for c := range results[0] {
			for d := range results[0][c] {
				if results[r][c][d] != results[0][c][d] {
					log.Fatalf("rank %d disagrees with rank 0 on centroid %d", r, c)
				}
			}
		}
	}
	fmt.Printf("all %d ranks converged to identical global centroids\n", ranks)
}

// runRank is the per-process SPMD body: simulate, then analyze in-situ.
func runRank(comm *mpi.Comm) ([][]float64, error) {
	heat, err := sim.NewHeat3D(sim.Heat3DConfig{
		NX: 24, NY: 24, NZ: 48, Threads: 2, Comm: comm, Seed: 99,
	})
	if err != nil {
		return nil, err
	}

	// Initial centroids spread across the field's value range; they are the
	// scheduler's extra data (paper Listing 1's extra_data).
	app := analytics.NewKMeans(k, dims)
	sched := core.MustNewScheduler[float64, []float64](app, core.SchedArgs{
		NumThreads: 2,
		ChunkSize:  dims,
		NumIters:   5,
		Extra:      initialCentroids(),
		Comm:       comm,
	})

	// Time sharing: after each simulation step, the analytics runs over the
	// live output buffer before the simulation resumes. Centroids carry
	// forward across steps through the combination map.
	analyze := func(data []float64) error {
		return sched.Run(data[:len(data)/dims*dims], nil)
	}
	if _, err := insitu.TimeSharing(heat, analyze, insitu.TimeSharingConfig{Steps: steps}); err != nil {
		return nil, err
	}
	return app.Centroids(sched.CombinationMap()), nil
}

func initialCentroids() []float64 {
	init := make([]float64, k*dims)
	for c := 0; c < k; c++ {
		for d := 0; d < dims; d++ {
			init[c*dims+d] = float64(c) * 110 / k
		}
	}
	return init
}
