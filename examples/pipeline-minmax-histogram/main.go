// A MapReduce pipeline of Smart jobs (paper Section 3.1): histogram
// construction needs the value range up front, so a first Smart job scans
// the partition for its min and max, and a second job builds the histogram
// with the learned range. The first job also demonstrates turning global
// combination off: with SetGlobalCombination(false) each rank would keep a
// local result to feed the next job in the parallel region; here we keep it
// on so the learned range is global.
//
// Run with: go run ./examples/pipeline-minmax-histogram
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/sim"
)

// minMaxApp is the first pipeline stage: a two-field reduction object
// tracking the partition's value range under a single key.
type minMaxApp struct{}

type rangeObj struct{ Min, Max float64 }

func (r *rangeObj) Clone() core.RedObj { cp := *r; return &cp }
func (r *rangeObj) MarshalBinary() ([]byte, error) {
	return mpi.EncodeFloat64s([]float64{r.Min, r.Max}), nil
}
func (r *rangeObj) UnmarshalBinary(b []byte) error {
	xs, err := mpi.DecodeFloat64s(b)
	if err != nil || len(xs) != 2 {
		return fmt.Errorf("rangeObj: bad payload")
	}
	r.Min, r.Max = xs[0], xs[1]
	return nil
}

func (minMaxApp) NewRedObj() core.RedObj {
	return &rangeObj{Min: math.Inf(1), Max: math.Inf(-1)}
}
func (minMaxApp) GenKey(chunk.Chunk, []float64, core.CombMap) int { return 0 }
func (minMaxApp) Accumulate(c chunk.Chunk, data []float64, obj core.RedObj) {
	o := obj.(*rangeObj)
	v := data[c.Start]
	o.Min = math.Min(o.Min, v)
	o.Max = math.Max(o.Max, v)
}
func (minMaxApp) Merge(src, dst core.RedObj) {
	s, d := src.(*rangeObj), dst.(*rangeObj)
	d.Min = math.Min(d.Min, s.Min)
	d.Max = math.Max(d.Max, s.Max)
}

const (
	ranks   = 3
	buckets = 16
)

func main() {
	comms := mpi.NewWorld(ranks)
	var wg sync.WaitGroup
	hists := make([][]int64, ranks)
	ranges := make([]rangeObj, ranks)
	for rank := 0; rank < ranks; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[rank].Close()

			// Each rank's "simulation output": a deterministic stream.
			em, err := sim.NewEmulator(sim.EmulatorConfig{
				StepElems: 50_000, Mean: 10, StdDev: 3, Seed: uint64(rank) + 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := em.Step(); err != nil {
				log.Fatal(err)
			}
			data := em.Data()

			// Stage 1: learn the global value range.
			rangeSched := core.MustNewScheduler[float64, float64](minMaxApp{}, core.SchedArgs{
				NumThreads: 2, ChunkSize: 1, NumIters: 1, Comm: comms[rank],
			})
			if err := rangeSched.Run(data, nil); err != nil {
				log.Fatalf("rank %d stage 1: %v", rank, err)
			}
			r := rangeSched.CombinationMap()[0].(*rangeObj)
			ranges[rank] = *r

			// Stage 2: histogram with the learned global range.
			app := analytics.NewHistogram(r.Min, r.Max+1e-9, buckets)
			histSched := core.MustNewScheduler[float64, int64](app, core.SchedArgs{
				NumThreads: 2, ChunkSize: 1, NumIters: 1, Comm: comms[rank],
			})
			out := make([]int64, buckets)
			if err := histSched.Run(data, out); err != nil {
				log.Fatalf("rank %d stage 2: %v", rank, err)
			}
			hists[rank] = out
		}()
	}
	wg.Wait()

	fmt.Printf("stage 1 learned global range: [%.3f, %.3f] (identical on all ranks: %v)\n",
		ranges[0].Min, ranges[0].Max, ranges[0] == ranges[1] && ranges[1] == ranges[2])
	fmt.Printf("stage 2 global histogram over %d ranks x 50k elements:\n", ranks)
	var total int64
	width := (ranges[0].Max - ranges[0].Min) / buckets
	for b, c := range hists[0] {
		total += c
		fmt.Printf("  [%7.3f,%7.3f) %6d\n", ranges[0].Min+float64(b)*width, ranges[0].Min+float64(b+1)*width, c)
	}
	fmt.Printf("  total: %d\n", total)
}
