// Window-based analytics with early emission (paper Section 4). The moving
// average maps every element to all the windows it covers (gen_keys); the
// trigger fires as soon as a window is complete, converting it to output and
// erasing its reduction object. The run is repeated with the trigger
// disabled to show the footprint difference the optimization buys.
//
// Run with: go run ./examples/window-movingavg
package main

import (
	"fmt"
	"log"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/sim"
)

func main() {
	heat, err := sim.NewHeat3D(sim.Heat3DConfig{NX: 32, NY: 32, NZ: 32, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := heat.Step(); err != nil {
		log.Fatal(err)
	}
	data := heat.Data()
	const win = 25

	run := func(trigger bool) ([]float64, *core.Stats) {
		app := analytics.NewMovingAverage(win, len(data), 0, trigger)
		sched := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
			NumThreads: 2, ChunkSize: 1, NumIters: 1,
		})
		out := make([]float64, len(data))
		if err := sched.Run2(data, out); err != nil {
			log.Fatal(err)
		}
		return out, sched.Stats()
	}

	smoothed, withTrigger := run(true)
	_, noTrigger := run(false)

	fmt.Printf("moving average (window %d) over one Heat3D time-step of %d elements\n\n", win, len(data))
	fmt.Printf("%-28s %15s %15s\n", "", "with trigger", "no trigger")
	fmt.Printf("%-28s %15d %15d\n", "peak live reduction objects",
		withTrigger.MaxLiveRedObjs, noTrigger.MaxLiveRedObjs)
	fmt.Printf("%-28s %15d %15d\n", "objects emitted early",
		withTrigger.EmittedEarly, noTrigger.EmittedEarly)
	fmt.Printf("\nthe trigger bounds the live state near the window size instead of the input size\n")
	fmt.Printf("(%dx fewer live objects)\n\n", noTrigger.MaxLiveRedObjs/max(withTrigger.MaxLiveRedObjs, 1))

	fmt.Println("first smoothed values:")
	for i := 0; i < 6; i++ {
		fmt.Printf("  out[%d] = %.4f (raw %.4f)\n", i, smoothed[i], data[i])
	}
}
