// Streaming statistics over a live Heat3D simulation: the time-sharing step
// loop is exposed as a stream source, and a sliding event-time window
// computes the field's mean and variance over the last 8 steps, advancing
// every 4. Each fired window re-enters one warm Smart scheduler — the
// combination map is recycled in place between windows, and every pane's
// result is byte-identical to a fresh batch run over that window's samples.
//
// Run with: go run ./examples/streaming-heat3d
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/insitu"
	"github.com/scipioneer/smart/internal/sim"
	"github.com/scipioneer/smart/internal/stream"
)

const (
	steps    = 24
	winSize  = 8
	winSlide = 4
)

func main() {
	heat, err := sim.NewHeat3D(sim.Heat3DConfig{
		NX: 24, NY: 24, NZ: 32, Threads: 2, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every simulation step becomes one event on the stream; its Data is a
	// copy of the step's output field (the simulation reuses its buffer).
	src := insitu.StreamSource(heat, insitu.StreamSourceConfig{
		TimeSharingConfig: insitu.TimeSharingConfig{Steps: steps},
	})

	// One global MomentsObj per window (grid size 0); the Result hook reads
	// mean and variance straight from the combination map.
	comb, err := stream.NewSchedCombiner[float64](stream.SchedOptions[float64]{
		Build: func(int) (core.Analytics[float64, float64], error) {
			return analytics.NewMoments(0, 0), nil
		},
		Args: core.SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1},
		Result: func(s *core.Scheduler[float64, float64], _ []float64) (any, error) {
			obj := s.CombinationMap()[0].(*analytics.MomentsObj)
			return [2]float64{obj.Mean, obj.Variance()}, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sliding mean/variance over Heat3D (%d steps, window %d, slide %d):\n",
		steps, winSize, winSlide)
	err = stream.New().
		From(src).
		Window(stream.Sliding(winSize, winSlide)).
		Combine(comb).
		To(stream.CallbackSink(func(r stream.WindowResult) error {
			mv := r.Value.([2]float64)
			fmt.Printf("  steps [%3d,%3d) %7d samples  mean %8.4f  variance %9.5f\n",
				r.Window.Start, r.Window.End, r.Elems, mv[0], mv[1])
			return nil
		})).
		Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stream drained: simulation finished and all windows fired")
}
